"""The semi-naive delta closure engine behind the daemon.

A :class:`ProjectAnalysis` holds one warm LC' graph for an evolving
sequence of top-level definitions (the project's *program*: a chain of
``let``/``letrec`` bindings ending in unit, exactly what
:meth:`ProjectAnalysis.render_source` prints). ``define`` and
``undefine`` mutate the chain **incrementally**: instead of
re-analysing from scratch, a redefinition

1. *retracts* exactly the edges the old definition justified — build
   edges are reference-counted per definition via the engine's
   ``edge_recorder`` hook, and a build edge whose count reaches zero
   is physically deleted;
2. runs a DRed-style **over-delete**: every closure-rule conclusion
   with a deleted premise is deleted too (conclusion scans mirror the
   close loop's premise-1 scans), and an operator node that loses an
   incoming edge is un-demanded with all its outgoing closure edges
   deleted (each incoming edge independently supports the demand
   fact, so losing any one of them invalidates the derivation);
3. **rederives**: operators that still have an incoming edge are
   re-demanded, each over-deleted closure edge whose premise survived
   is re-added (the one-step rederivation), and the engine's ordinary
   ``close()`` fixpoint propagates from there — the delta worklist,
   not the whole graph;
4. builds the new definition's subtree through the same recorder and
   closes again.

Over-deletion is required for exactness: demand support can be
*cyclic* (closure edges between operator towers over a ground cycle
sustain each other's demand), so a deletion cascade that only removes
edges whose justification is currently absent would keep edges a cold
run never derives. Deleting first and rederiving from survivors is
the classic DRed argument, specialised to LC''s two rule families.

Whenever retraction support is ambiguous the engine **falls back** to
a full replay of the definition history, tagging the reason
(:data:`FALLBACK_REASONS`):

``rename-shift``
    The edit changes how alpha-renaming would allocate fresh names for
    *later* definitions (the warm graph's node identities would no
    longer match a cold parse of the rendered program).
``node-budget``
    The delta application exceeded the node budget; a replay starts
    from a fresh factory without retired garbage.
``internal-error``
    Any unexpected failure while mutating the warm graph; replay
    re-establishes a consistent state.

Either way the result is **byte-identical** to a cold analysis of
:meth:`render_source` — the equivalence suite enforces this per
operation, on both graph backends.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AnalysisBudgetExceeded, ScopeError
from repro.core.lc import LCEngine, SubtransitiveGraph
from repro.obs.events import emit_event, span as _span
from repro.core.nodes import (
    CONTRAVARIANT_HEADS,
    COVARIANT_HEADS,
    EXPR,
    Node,
)
from repro.core.queries import SubtransitiveCFA
from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Lam,
    Let,
    Letrec,
    Lit,
    Program,
    Var,
)
from repro.lang.parser import parse_expr
from repro.lang.rename import _Renamer

#: The delta engine's fallback taxonomy (see module docstring).
FALLBACK_REASONS = ("rename-shift", "node-budget", "internal-error")

#: Engine limits for daemon sessions: fixed (not per-program) so the
#: warm graph's node identities are stable across edits. The depth cap
#: bounds the demand cascade on untypeable flows exactly as the cold
#: reference configuration does.
DAEMON_NODE_BUDGET = 1_000_000
DAEMON_MAX_DEPTH = 24

EdgePair = Tuple[Node, Node]


def free_base_names(expr: Expr) -> Set[str]:
    """The free variable names of an unrenamed expression."""
    out: Set[str] = set()

    def go(node: Expr, env: frozenset) -> None:
        if isinstance(node, Var):
            if node.name not in env:
                out.add(node.name)
            return
        if isinstance(node, Lam):
            go(node.body, env | {node.param})
            return
        if isinstance(node, Let):
            go(node.bound, env)
            go(node.body, env | {node.name})
            return
        if isinstance(node, Letrec):
            inner = env | {node.name}
            go(node.bound, inner)
            go(node.body, inner)
            return
        if isinstance(node, Case):
            go(node.scrutinee, env)
            for branch in node.branches:
                go(branch.body, env | set(branch.params))
            return
        for child in node.children():
            go(child, env)

    go(expr, frozenset())
    return out


class _RecordingRenamer(_Renamer):
    """An alpha-renamer that records its fresh-name consumption.

    A cold parse of the rendered program runs one renamer over the
    whole definition chain; the recorded ``(base, fresh)`` sequence is
    exactly the slice of that run belonging to one definition, which
    is what lets a redefinition *prove* that re-renaming it leaves
    every later definition's names untouched (no ``rename-shift``).
    """

    def __init__(self, used: Optional[Set[str]] = None) -> None:
        super().__init__(used)
        self.consumed: List[Tuple[str, str]] = []

    def fresh(self, base: str) -> str:
        name = super().fresh(base)
        self.consumed.append((base, name))
        return name


def _simulate_fresh(used: Set[str], base: str) -> str:
    """What ``_Renamer.fresh`` would return against ``used`` (and the
    mutation it would make), without building a renamer."""
    if base not in used:
        used.add(base)
        return base
    counter = 1
    while f"{base}_{counter}" in used:
        counter += 1
    name = f"{base}_{counter}"
    used.add(name)
    return name


class DefEntry:
    """One top-level definition of a project program."""

    __slots__ = (
        "name",
        "fresh",
        "source",
        "raw",
        "bound",
        "spine",
        "recursive",
        "consumed",
        "refs",
        "auto_lams",
        "nlines",
        "shift",
    )

    def __init__(
        self,
        name: str,
        fresh: str,
        source: str,
        raw: Expr,
        bound: Expr,
        spine: Expr,
        recursive: bool,
        consumed: List[Tuple[str, str]],
    ) -> None:
        self.name = name
        #: The alpha-renamed binder name (the graph's variable node).
        self.fresh = fresh
        #: The original source text, used verbatim when rendering the
        #: program for the cold reference (no printer round-trip).
        self.source = source
        #: The unrenamed AST — the replay fallback re-renames it.
        self.raw = raw
        #: The renamed AST spliced into the live chain.
        self.bound = bound
        #: The chain's Let/Letrec node for this definition.
        self.spine = spine
        self.recursive = recursive
        #: ``(base, fresh)`` pairs in renamer-consumption order.
        self.consumed = consumed
        #: Build-edge emission counts for this definition's subtree.
        self.refs: Dict[EdgePair, int] = {}
        #: Abstractions whose label is auto-assigned; reset before
        #: each re-index so label allocation matches a cold parse.
        self.auto_lams: List[Lam] = [
            node
            for node in bound.walk()
            if isinstance(node, Lam) and node.label is None
        ]
        #: Rendered line count of ``source`` (embedded newlines count).
        self.nlines = len(source.split("\n"))
        #: Line shift currently applied to ``bound`` — 0 right after a
        #: (re)rename, when positions are still snippet-relative;
        #: :meth:`ProjectAnalysis._renumber_lines` raises it to the
        #: definition's offset in the rendered chain.
        self.shift = 0


class ProjectAnalysis:
    """A warm, incrementally-maintained LC' analysis of one project."""

    def __init__(
        self,
        graph_backend: str = "object",
        node_budget: int = DAEMON_NODE_BUDGET,
        max_depth: int = DAEMON_MAX_DEPTH,
    ) -> None:
        self.graph_backend = graph_backend
        self.node_budget = node_budget
        self.max_depth = max_depth
        self.defs: List[DefEntry] = []
        #: Monotonic graph version; bumps on every applied mutation.
        self.version = 0
        #: Per-reason fallback counts (all zero on the pure delta path).
        self.fallbacks: Dict[str, int] = {r: 0 for r in FALLBACK_REASONS}
        self._fresh_state()
        self._renumber_lines()

    # -- state plumbing ----------------------------------------------------

    def _fresh_state(self) -> None:
        #: The shared chain terminator (the program's final ``()``).
        self.terminal = Lit(None)
        self.program = Program(self.terminal, rename=False)
        self.engine = LCEngine(
            self.program,
            congruence=None,
            node_budget=self.node_budget,
            max_depth=self.max_depth,
            graph_backend=self.graph_backend,
        )
        #: Insertion-ordered recorded closure edges (the warm twin of
        #: a cold run's ``close_edge_set``).
        self.close: Dict[EdgePair, None] = {}
        #: Physical build edges -> reference count across definitions
        #: (subtree emissions plus the chain's binding/body edges).
        self.ground: Dict[EdgePair, int] = {}
        #: The chain wiring edges currently installed.
        self.spine_pairs: Set[EdgePair] = set()

    def _snapshot(self):
        return (
            self.defs,
            self.terminal,
            self.program,
            self.engine,
            self.close,
            self.ground,
            self.spine_pairs,
        )

    def _restore(self, saved) -> None:
        (
            self.defs,
            self.terminal,
            self.program,
            self.engine,
            self.close,
            self.ground,
            self.spine_pairs,
        ) = saved

    def _find(self, name: str) -> Optional[int]:
        for index, entry in enumerate(self.defs):
            if entry.name == name:
                return index
        return None

    def _env(self, upto: int) -> Dict[str, str]:
        return {d.name: d.fresh for d in self.defs[:upto]}

    def _pool(self, upto: int) -> Set[str]:
        pool: Set[str] = set()
        for entry in self.defs[:upto]:
            pool.update(fresh for _, fresh in entry.consumed)
        return pool

    # -- renaming / eligibility --------------------------------------------

    def _rename_def(
        self,
        name: str,
        raw: Expr,
        env: Dict[str, str],
        pool: Set[str],
    ):
        """Alpha-rename one definition exactly as the cold chain parse
        would at its position: bound first then binder for ``let``,
        binder first (in scope) for ``letrec``."""
        recursive = name in free_base_names(raw) and name not in env
        if recursive and not isinstance(raw, Lam):
            raise ScopeError(
                "letrec requires the bound expression to be an abstraction"
            )
        renamer = _RecordingRenamer(pool)
        if recursive:
            fresh = renamer.fresh(name)
            bound = renamer.rename(raw, {**env, name: fresh})
        else:
            bound = renamer.rename(raw, env)
            fresh = renamer.fresh(name)
        return fresh, bound, renamer.consumed, recursive

    def _replay_matches(self, pool: Set[str], start: int) -> bool:
        """Would later definitions re-rename to the same fresh names
        against ``pool``? (The no-``rename-shift`` proof.)"""
        used = set(pool)
        for entry in self.defs[start:]:
            for base, fresh in entry.consumed:
                if _simulate_fresh(used, base) != fresh:
                    return False
        return True

    def _referenced_elsewhere(self, fresh: str, skip: int) -> bool:
        """Does any other definition's renamed body reference the
        binder ``fresh``? (Free variables of a stored body are exactly
        the fresh names of the globals it uses.)"""
        for index, entry in enumerate(self.defs):
            if index == skip:
                continue
            if fresh in free_base_names(entry.bound):
                return True
        return False

    # -- program indexing ---------------------------------------------------

    def _renumber_lines(self) -> None:
        """Stamp cold-parse line numbers onto the warm chain.

        :meth:`render_source` lays each definition out as four fixed
        lines (``let NAME =`` / ``(`` / ... / ``)`` then ``in``)
        around its verbatim source, so definition ``i`` starts at line
        ``offset_i = sum(4 + nlines_j for j < i)`` and its snippet's
        1-based positions sit ``offset_i + 2`` lines lower in the
        chain. Columns never move — snippets render at column 1.
        Re-stamping keeps warm lint findings byte-identical to a cold
        parse of the rendered program; per-definition shifts are
        cached so an unmoved definition costs O(1)."""
        offset = 0
        for entry in self.defs:
            entry.spine.line, entry.spine.column = offset + 1, 1
            shift = offset + 2
            if shift != entry.shift:
                delta = shift - entry.shift
                for node in entry.bound.walk():
                    node.line += delta
                entry.shift = shift
            offset += 4 + entry.nlines
        self.terminal.line, self.terminal.column = offset + 1, 1

    def _reindex(self) -> None:
        """Re-run :class:`Program` indexing over the current chain and
        re-key the factory's expression interning to the new nids.

        Auto labels are cleared first so allocation replays the cold
        parse's preorder walk (same labels, same nids, same tables)."""
        for entry in self.defs:
            for lam in entry.auto_lams:
                lam.label = None
        root = self.defs[0].spine if self.defs else self.terminal
        program = Program(root, rename=False)
        self._rekey(program)
        self.program = program
        self.engine.program = program
        self.engine.factory.program = program

    def _rekey(self, program: Program) -> None:
        """Re-key factory interning from old nids to ``program``'s.

        Expression nodes are interned by nid; a re-index moves every
        nid, and drops retired occurrences entirely (so a query can
        never resurrect a replaced definition's nodes). Variable and
        operator keys are nid-independent and survive as-is."""
        factory = self.engine.factory
        live = {id(node): node.nid for node in program.nodes}
        new_intern = {}
        for key, node in factory._intern.items():
            if key[0] == EXPR:
                nid = live.get(id(node.expr))
                if nid is None:
                    continue  # retired occurrence
                new_intern[(EXPR, nid, key[2])] = node
            else:
                new_intern[key] = node
        factory._intern = new_intern
        occurrences = {}
        for key, bucket in factory._occurrences.items():
            if key[0] != EXPR:
                occurrences[key] = bucket
        for key, node in new_intern.items():
            if key[0] == EXPR:
                occurrences.setdefault((EXPR, key[1]), []).append(node)
        factory._occurrences = occurrences
        for cls, bucket in list(factory._bearing.items()):
            kept = [
                node
                for node in bucket
                if node.expr is not None and id(node.expr) in live
            ]
            if kept:
                factory._bearing[cls] = kept
            else:
                del factory._bearing[cls]

    def _splice_same_shape(
        self,
        index: int,
        old: "DefEntry",
        name: str,
        fresh: str,
        source: str,
        raw: Expr,
        bound: Expr,
        consumed: List[Tuple[str, str]],
        recursive: bool,
    ) -> bool:
        """Same-shape redefinition fast path: splice the new bound
        subtree into the live :class:`Program` tables in place of the
        old one, skipping the full re-index.

        ``walk()`` is left-to-right preorder, so a bound subtree
        occupies a contiguous nid range with its root first; when the
        replacement has the same node count, every nid outside that
        range — and therefore every interned node, occurrence bucket
        and recorded closure edge elsewhere — is untouched by a cold
        re-parse too. The full re-index costs O(program) per edit and
        dominates warm latency (benchmarks/bench_daemon.py); this
        path makes same-shape edits O(subtree).

        Guards (any miss falls back to the exact slow path): no
        let/letrec flip, no auto labels on either side (their preorder
        allocation is global), no datatype nodes (arity validation
        lives in ``Program._index``), equal node counts, and no label
        collision outside the replaced range."""
        if recursive != old.recursive or old.auto_lams:
            return False
        old_nodes = list(old.bound.walk())
        new_nodes = list(bound.walk())
        if len(new_nodes) != len(old_nodes):
            return False
        for node in new_nodes:
            if isinstance(node, (Case, Con)):
                return False
            if isinstance(node, Lam) and node.label is None:
                return False
        if any(isinstance(node, (Case, Con)) for node in old_nodes):
            return False
        program = self.program
        old_labels = {
            node.label for node in old_nodes if isinstance(node, Lam)
        }
        for node in new_nodes:
            if isinstance(node, Lam):
                holder = program.label_table.get(node.label)
                if holder is not None and node.label not in old_labels:
                    return False
        nid_start = old_nodes[0].nid
        if program.nodes[nid_start] is not old_nodes[0]:
            return False  # stale indexing — let the slow path rebuild
        try:
            for offset, node in enumerate(new_nodes):
                node.nid = nid_start + offset
            program.nodes[nid_start : nid_start + len(old_nodes)] = new_nodes
            for node in old_nodes:
                if isinstance(node, Lam):
                    del program.label_table[node.label]
                    del program.binders[node.param]
                elif isinstance(node, (Let, Letrec)):
                    del program.binders[node.name]
            for node in new_nodes:
                if isinstance(node, Lam):
                    program.label_table[node.label] = node
                    program.binders[node.param] = node
                elif isinstance(node, (Let, Letrec)):
                    program.binders[node.name] = node
            program.abstractions = [
                node for node in program.nodes if isinstance(node, Lam)
            ]
            program.applications = [
                node for node in program.nodes if isinstance(node, App)
            ]
            spine = old.spine
            if fresh != old.fresh:
                del program.binders[old.fresh]
                program.binders[fresh] = spine
            spine.name = fresh
            spine.bound = bound
            self.defs[index] = DefEntry(
                name, fresh, source, raw, bound, spine, recursive, consumed
            )
            self._drop_retired(old_nodes, nid_start)
        except Exception:
            # The splice mutates live tables; a failure mid-way is not
            # locally recoverable — rebuild from the pre-operation
            # specs and surface the error.
            self._replay(self._specs_from(index, old))
            raise
        return True

    def _specs_from(self, index: int, old: "DefEntry"):
        specs = self._specs()
        specs[index] = (old.name, old.source, old.raw)
        return specs

    def _drop_retired(
        self, old_nodes: List[Expr], nid_start: int
    ) -> None:
        """Purge the factory's interning/occurrence/bearing records of
        a retired subtree (the targeted version of what :meth:`_rekey`
        does globally after a full re-index): the replacement reuses
        the same nids, so stale entries would resurrect old nodes."""
        factory = self.engine.factory
        retired = {id(node) for node in old_nodes}
        dead_keys = [
            key
            for key, node in factory._intern.items()
            if key[0] == EXPR and id(node.expr) in retired
        ]
        for key in dead_keys:
            del factory._intern[key]
        for nid in range(nid_start, nid_start + len(old_nodes)):
            bucket = factory._occurrences.get((EXPR, nid))
            if not bucket:
                continue
            kept = [n for n in bucket if id(n.expr) not in retired]
            if kept:
                factory._occurrences[(EXPR, nid)] = kept
            else:
                del factory._occurrences[(EXPR, nid)]
        for cls, bucket in list(factory._bearing.items()):
            kept = [
                node
                for node in bucket
                if not (node.expr is not None and id(node.expr) in retired)
            ]
            if kept:
                factory._bearing[cls] = kept
            else:
                del factory._bearing[cls]

    # -- ground-edge bookkeeping -------------------------------------------

    def _desired_spine_pairs(self) -> Set[EdgePair]:
        """The chain wiring a cold build would emit for the current
        definitions: one binding edge (binder var -> bound root) and
        one body edge (spine node -> next spine node / terminal) per
        definition — exactly LC''s Let/Letrec build rule."""
        factory = self.engine.factory
        pairs: Set[EdgePair] = set()
        for index, entry in enumerate(self.defs):
            pairs.add(
                (
                    factory.var_node(entry.fresh),
                    factory.expr_node(entry.bound),
                )
            )
            nxt = (
                self.defs[index + 1].spine
                if index + 1 < len(self.defs)
                else self.terminal
            )
            pairs.add(
                (factory.expr_node(entry.spine), factory.expr_node(nxt))
            )
        return pairs

    def _retract_counts(self, counts: Dict[EdgePair, int]) -> List[EdgePair]:
        """Decrement ground reference counts; return the pairs whose
        count reached zero (to be physically deleted)."""
        zeroed: List[EdgePair] = []
        ground = self.ground
        for pair, count in counts.items():
            remaining = ground.get(pair, 0) - count
            if remaining > 0:
                ground[pair] = remaining
            else:
                ground.pop(pair, None)
                zeroed.append(pair)
        return zeroed

    # -- DRed over-delete + rederive ----------------------------------------

    def _dec_close_counter(self, src: Node) -> None:
        """Retracting one recorded closure edge: decrement the CLOSE-*
        counter it was attributed to. Attribution follows the firing
        rule the head implies; ``cell`` participates in both rules, so
        when the implied counter is already drained the other one is
        decremented (the sanitizer checks the *sum* against the
        recorded closure-edge count, which this preserves exactly)."""
        engine = self.engine
        primary = (
            engine._c_close_contra
            if src.opkey[0] == "dom"
            else engine._c_close_cov
        )
        secondary = (
            engine._c_close_cov
            if primary is engine._c_close_contra
            else engine._c_close_contra
        )
        if primary.value > 0:
            primary.value -= 1
        else:
            secondary.value -= 1

    def _overdelete(
        self, seeds: List[EdgePair]
    ) -> Tuple[List[EdgePair], List[Node]]:
        """DRed phase one: delete ``seeds`` and, transitively, every
        closure conclusion any deleted edge was a premise of.

        Any incoming edge supports an operator's demand independently,
        so demand is only invalidated when the *last* incoming edge
        goes — un-demanding on every deletion would delete and then
        rederive the full closure neighbourhood of shared hub
        operators (O(n) churn per edit on the cubic family, measured
        in benchmarks/bench_daemon.py). An operator whose support
        vanishes mid-wave is caught when its final in-edge is
        processed; survivors are re-demanded in phase two."""
        graph = self.engine.graph
        stats = self.engine.stats
        work = deque(seeds)
        scan = deque()
        deleted_close: List[EdgePair] = []
        undemanded: List[Node] = []
        while work or scan:
            if work:
                pair = work.popleft()
                src, dst = pair
                if not graph.remove_edge(src, dst):
                    continue  # already deleted via another premise
                if pair in self.close:
                    del self.close[pair]
                    self._dec_close_counter(src)
                    deleted_close.append(pair)
                scan.append(pair)
                if (
                    dst.kind == "op"
                    and dst.demanded
                    and graph.in_degree(dst) == 0
                ):
                    dst.demanded = False
                    stats.demanded_nodes -= 1
                    undemanded.append(dst)
                    for succ in list(graph.successors(dst)):
                        if (dst, succ) in self.close:
                            work.append((dst, succ))
                continue
            src, dst = scan.popleft()
            # Conclusion scans — the deleted edge as premise 1 of each
            # closure rule, mirroring the close loop's premise scans
            # (demand flags are ignored: the conclusion may have been
            # derived under demand support that is itself being
            # retracted).
            for opkey, opnode in src.ops.items():
                if opkey[0] in COVARIANT_HEADS:
                    other = dst.ops.get(opkey)
                    if other is not None and (opnode, other) in self.close:
                        work.append((opnode, other))
            for opkey, opnode in dst.ops.items():
                if opkey[0] in CONTRAVARIANT_HEADS:
                    other = src.ops.get(opkey)
                    if other is not None and (opnode, other) in self.close:
                        work.append((opnode, other))
        return deleted_close, undemanded

    def _rederive(
        self, deleted_close: List[EdgePair], undemanded: List[Node]
    ) -> int:
        """DRed phase two: re-demand operators that still have support,
        then re-add each over-deleted closure edge whose premise edge
        survived (queued as pending, so the subsequent ``close()``
        fixpoint propagates the multi-step rederivations)."""
        graph = self.engine.graph
        stats = self.engine.stats
        engine = self.engine
        for node in undemanded:
            if not node.demanded and graph.in_degree(node) > 0:
                node.demanded = True
                stats.demanded_nodes += 1
        readded = 0
        for src, dst in deleted_close:
            if not src.demanded:
                continue
            head = src.opkey[0]
            justified = (
                head in COVARIANT_HEADS
                and graph.has_edge(src.inner, dst.inner)
            ) or (
                head in CONTRAVARIANT_HEADS
                and graph.has_edge(dst.inner, src.inner)
            )
            if justified and engine._edge(src, dst, close=True):
                if head == "dom":
                    engine._c_close_contra.value += 1
                else:
                    engine._c_close_cov.value += 1
                readded += 1
        return readded

    # -- graph delta application --------------------------------------------

    def _build_subtree(self, entry: DefEntry) -> None:
        """Build the definition's subtree edges, reference-counted."""
        engine = self.engine
        refs: Dict[EdgePair, int] = {}

        def recorder(src: Node, dst: Node, close: bool) -> None:
            if not close:
                pair = (src, dst)
                refs[pair] = refs.get(pair, 0) + 1

        engine.edge_recorder = recorder
        try:
            engine._build_expr(entry.bound, ())
        finally:
            engine.edge_recorder = None
        entry.refs = refs
        ground = self.ground
        for pair, count in refs.items():
            ground[pair] = ground.get(pair, 0) + count

    def _apply_delta(
        self,
        retracted: List[DefEntry],
        inserted: List[DefEntry],
    ) -> Dict[str, int]:
        """One semi-naive mutation: retract, over-delete, rederive,
        build, close, drain. Returns delta-size accounting."""
        engine = self.engine
        # 1. Ground retraction: per-definition build-edge refcounts
        #    plus the stale chain wiring, folded into one seed list.
        seeds: List[EdgePair] = []
        for entry in retracted:
            seeds.extend(self._retract_counts(entry.refs))
        desired = self._desired_spine_pairs()
        stale = self.spine_pairs - desired
        added_spine = desired - self.spine_pairs
        seeds.extend(
            self._retract_counts({pair: 1 for pair in stale})
        )
        # 2-3. DRed over-delete + one-step rederive.
        deleted_close, undemanded = self._overdelete(seeds)
        readded = self._rederive(deleted_close, undemanded)
        # 4. New ground edges: chain wiring first, then the new
        #    definitions' subtrees (both land on the pending worklist).
        ground = self.ground
        for src, dst in added_spine:
            ground[(src, dst)] = ground.get((src, dst), 0) + 1
            engine._edge(src, dst)
        self.spine_pairs = desired
        for entry in inserted:
            self._build_subtree(entry)
        # 5. Close to fixpoint from the delta worklist and drain the
        #    newly recorded closure edges into the warm ordered set.
        engine.close()
        for pair in engine.close_edge_set:
            self.close[pair] = None
        engine.close_edge_set.clear()
        self.version += 1
        return {
            "retracted_edges": len(seeds) + len(deleted_close),
            "retracted_close_edges": len(deleted_close),
            "rederived_edges": readded,
        }

    # -- replay fallback -----------------------------------------------------

    def _replay(self, specs: List[Tuple[str, str, Expr]]) -> None:
        """Rebuild the warm state from scratch by re-appending every
        definition (fresh engine, no retired garbage). Restores the
        previous state object-for-object on failure."""
        saved = self._snapshot()
        self.defs = []
        self._fresh_state()
        try:
            with _span("delta.replay"):
                for name, source, raw in specs:
                    self._append(name, source, raw)
            self._renumber_lines()
        except Exception:
            self._restore(saved)
            # The restored trees may carry nids/labels assigned by the
            # failed replay only if they were shared — they are not
            # (a replay renames from ``raw``), so the old program
            # object is still internally consistent.
            raise

    def _specs(self) -> List[Tuple[str, str, Expr]]:
        return [(d.name, d.source, d.raw) for d in self.defs]

    def _fallback(
        self,
        specs: List[Tuple[str, str, Expr]],
        reason: str,
    ) -> None:
        self._replay(specs)
        self.fallbacks[reason] += 1

    # -- mutations ------------------------------------------------------------

    def define(self, name: str, source: str) -> Dict[str, object]:
        """Bind (or rebind) ``name`` to the expression ``source``.

        Returns the operation report: whether the delta path applied,
        the fallback reason otherwise, and delta-size accounting."""
        raw = parse_expr(source)
        index = self._find(name)
        if index is None:
            return self._guarded_append(name, source, raw)
        return self._redefine(index, name, source, raw)

    def undefine(self, name: str) -> Dict[str, object]:
        """Remove the binding ``name`` (an error while referenced)."""
        index = self._find(name)
        if index is None:
            raise ScopeError(f"unknown definition {name!r}")
        entry = self.defs[index]
        if self._referenced_elsewhere(entry.fresh, index):
            raise ScopeError(
                f"cannot undefine {name!r}: other definitions reference it"
            )
        pre_specs = self._specs()
        specs = pre_specs[:index] + pre_specs[index + 1 :]
        if not self._replay_matches(self._pool(index), index + 1):
            self._fallback(specs, "rename-shift")
            return self._report("undefine", name, "rename-shift", {})
        # Delta path: splice the chain, re-index, retract.
        self.defs.pop(index)
        if index > 0:
            self.defs[index - 1].spine.body = (
                self.defs[index].spine
                if index < len(self.defs)
                else self.terminal
            )
        self._reindex()  # cannot fail: strictly fewer labels/binders
        return self._apply_guarded(
            "undefine", name, pre_specs, retracted=[entry], inserted=[]
        )

    # -- mutation internals ---------------------------------------------------

    def _guarded_append(
        self, name: str, source: str, raw: Expr
    ) -> Dict[str, object]:
        pre_specs = self._specs()
        entry = self._splice_append(name, source, raw)
        return self._apply_guarded(
            "define", name, pre_specs, retracted=[], inserted=[entry],
            mode="append",
        )

    def _splice_append(self, name: str, source: str, raw: Expr) -> DefEntry:
        """Validate, rename and splice a new trailing definition.
        Raises (state unchanged) on scope/label errors."""
        env = self._env(len(self.defs))
        pool = self._pool(len(self.defs))
        fresh, bound, consumed, recursive = self._rename_def(
            name, raw, env, pool
        )
        cls = Letrec if recursive else Let
        spine = cls(fresh, bound, self.terminal)
        entry = DefEntry(
            name, fresh, source, raw, bound, spine, recursive, consumed
        )
        if self.defs:
            self.defs[-1].spine.body = spine
        self.defs.append(entry)
        try:
            self._reindex()
        except Exception:
            self.defs.pop()
            if self.defs:
                self.defs[-1].spine.body = self.terminal
            self._reindex()
            raise
        return entry

    def _append(self, name: str, source: str, raw: Expr) -> None:
        """Unguarded append (replay path: budget errors propagate)."""
        entry = self._splice_append(name, source, raw)
        self._apply_delta(retracted=[], inserted=[entry])

    def _redefine(
        self, index: int, name: str, source: str, raw: Expr
    ) -> Dict[str, object]:
        old = self.defs[index]
        pre_specs = self._specs()
        specs = list(pre_specs)
        specs[index] = (name, source, raw)
        env = self._env(index)
        pool = self._pool(index)
        # Rename against the pool as it stands *before* this
        # definition — exactly the cold renamer's state at its slot.
        fresh, bound, consumed, recursive = self._rename_def(
            name, raw, env, pool
        )
        eligible = self._replay_matches(pool, index + 1)
        if eligible and fresh != old.fresh:
            # The binder's own fresh name moved; stored later bodies
            # still reference the old one, so the chain only stays
            # cold-equal if nothing references it at all.
            eligible = not self._referenced_elsewhere(old.fresh, index)
        if not eligible:
            self._fallback(specs, "rename-shift")
            return self._report("define", name, "rename-shift", {})
        if self._splice_same_shape(
            index, old, name, fresh, source, raw, bound, consumed, recursive
        ):
            return self._apply_guarded(
                "define",
                name,
                pre_specs,
                retracted=[old],
                inserted=[self.defs[index]],
                mode="splice",
            )
        # Delta path: swap the spine node, re-index, retract + build.
        cls = Letrec if recursive else Let
        spine = cls(fresh, bound, old.spine.body)
        entry = DefEntry(
            name, fresh, source, raw, bound, spine, recursive, consumed
        )
        if index > 0:
            self.defs[index - 1].spine.body = spine
        self.defs[index] = entry
        try:
            self._reindex()
        except Exception:
            self.defs[index] = old
            if index > 0:
                self.defs[index - 1].spine.body = old.spine
            self._reindex()
            raise
        return self._apply_guarded(
            "define", name, pre_specs, retracted=[old], inserted=[entry]
        )

    def _apply_guarded(
        self,
        op: str,
        name: str,
        pre_specs: List[Tuple[str, str, Expr]],
        retracted: List[DefEntry],
        inserted: List[DefEntry],
        mode: str = "delta",
    ) -> Dict[str, object]:
        """Run the graph delta; on failure replay the (already
        updated) definition list, and if even that fails restore the
        pre-operation program before re-raising."""
        try:
            with _span(f"delta.{mode}"):
                sizes = self._apply_delta(retracted, inserted)
        except Exception as error:
            reason = (
                "node-budget"
                if isinstance(error, AnalysisBudgetExceeded)
                else "internal-error"
            )
            current_specs = self._specs()
            try:
                self._fallback(current_specs, reason)
            except Exception:
                # Even the replay with the new definitions failed
                # (e.g. genuinely over budget): restore the
                # pre-operation program cold and surface the error.
                self._replay(pre_specs)
                raise error
            return self._report(op, name, reason, {})
        return self._report(op, name, None, sizes, mode=mode)

    def _report(
        self,
        op: str,
        name: str,
        fallback_reason: Optional[str],
        sizes: Dict[str, int],
        mode: str = "replay",
    ) -> Dict[str, object]:
        # Every mutation ends here: restamp chain positions so read
        # surfaces (lint above all) agree with a cold parse.
        self._renumber_lines()
        graph = self.engine.graph
        report = {
            "op": op,
            "name": name,
            "delta": fallback_reason is None,
            "delta_fallback_reason": fallback_reason,
            #: How the mutation landed: ``splice`` (same-shape fast
            #: path), ``delta`` (DRed retract/rederive), ``append``
            #: (new trailing definition) or ``replay`` (full rebuild).
            "mode": mode,
            "retracted_edges": sizes.get("retracted_edges", 0),
            "retracted_close_edges": sizes.get("retracted_close_edges", 0),
            "rederived_edges": sizes.get("rederived_edges", 0),
            "graph": {
                "nodes": graph.node_count,
                "edges": graph.edge_count,
            },
            "version": self.version,
            "definitions": len(self.defs),
        }
        emit_event(
            "delta",
            component="delta",
            op=op,
            name=name,
            mode=mode,
            fallback_reason=fallback_reason,
            retracted_edges=report["retracted_edges"],
            rederived_edges=report["rederived_edges"],
            version=self.version,
        )
        return report

    # -- read surfaces ---------------------------------------------------------

    def subgraph(self) -> SubtransitiveGraph:
        """The warm graph as a :class:`SubtransitiveGraph` (fresh
        wrapper per call, so per-instance query caches never go
        stale across mutations)."""
        return SubtransitiveGraph(
            self.program,
            self.engine.factory,
            self.engine.graph,
            self.engine.stats,
            frozenset(self.close),
        )

    def cfa(self) -> SubtransitiveCFA:
        return SubtransitiveCFA(self.subgraph())

    def envelope(self) -> Dict[str, object]:
        """The ``repro.result/1`` document for the current program —
        byte-identical to a cold analysis of :meth:`render_source`."""
        from repro.export import result_to_dict

        return result_to_dict(self.cfa())

    def lint(self) -> Dict[str, object]:
        """The lint section (findings/counts) for the current
        program, shaped exactly like the serve worker's."""
        from repro.serve.worker import _lint_section

        return _lint_section(self.program, self.cfa())

    def sanitize(self) -> Dict[str, object]:
        """The graph well-formedness report (timings dropped)."""
        report = self.subgraph().sanitize()
        return {
            "ok": report.ok,
            "checks": list(report.checks),
            "violations": [dict(v) for v in report.violations],
            "dtc_checked": report.dtc_checked,
        }

    def query_name(self, name: str) -> Dict[str, object]:
        """The label set of a binding on the warm graph."""
        index = self._find(name)
        if index is None:
            raise ScopeError(f"unknown definition {name!r}")
        entry = self.defs[index]
        labels = self.cfa().labels_of_var(entry.fresh)
        return {"name": name, "labels": sorted(labels)}

    def query_label(self, label: str) -> Dict[str, object]:
        """The expressions an abstraction label flows to."""
        exprs = self.cfa().expressions_with_label(label)
        return {"label": label, "nids": [e.nid for e in exprs]}

    def render_source(self) -> str:
        """The concrete program a cold run must parse to agree with
        the warm graph: the original definition sources (verbatim, no
        printer round-trip) chained with let/letrec, ending in unit."""
        lines: List[str] = []
        for entry in self.defs:
            keyword = "letrec" if entry.recursive else "let"
            lines.append(f"{keyword} {entry.name} =")
            lines.append("(")
            lines.append(entry.source)
            lines.append(")")
            lines.append("in")
        lines.append("()")
        return "\n".join(lines) + "\n"

    @staticmethod
    def cold_cfa(
        source: str,
        graph_backend: str = "object",
        node_budget: int = DAEMON_NODE_BUDGET,
        max_depth: int = DAEMON_MAX_DEPTH,
    ) -> SubtransitiveCFA:
        """The cold reference: parse + build + close from scratch with
        the daemon's engine configuration."""
        from repro.lang.parser import parse

        program = parse(source)
        engine = LCEngine(
            program,
            congruence=None,
            node_budget=node_budget,
            max_depth=max_depth,
            graph_backend=graph_backend,
        )
        return SubtransitiveCFA(engine.run())
