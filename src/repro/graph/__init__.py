"""Directed-graph substrate.

The paper's central move is reducing control-flow analysis to *graph
reachability* ("what we establish in this paper is a connection
between control-flow analysis and graph reachability"). This package
provides the graph machinery every analysis builds on: a compact
adjacency-set digraph, BFS/DFS reachability, Tarjan's SCC algorithm,
transitive closure, and a union-find (used by the equality-based CFA
baseline).
"""

from repro.graph.closure import transitive_closure
from repro.graph.csr import CSRDigraph, Interner
from repro.graph.digraph import Digraph
from repro.graph.reachability import (
    reachable_from,
    reachable_to,
    reaches,
)
from repro.graph.tarjan import condensation, strongly_connected_components
from repro.graph.unionfind import UnionFind

#: The selectable graph backends, by flag value.
GRAPH_BACKENDS = ("object", "csr")


def make_graph(backend: str = "object"):
    """A fresh graph of the requested backend: ``"object"`` for the
    adjacency-set :class:`Digraph` (the golden twin), ``"csr"`` for
    the flat-array :class:`CSRDigraph`."""
    if backend == "object":
        return Digraph()
    if backend == "csr":
        return CSRDigraph()
    raise ValueError(
        f"unknown graph backend {backend!r}; expected one of "
        f"{GRAPH_BACKENDS}"
    )


__all__ = [
    "CSRDigraph",
    "Digraph",
    "GRAPH_BACKENDS",
    "Interner",
    "UnionFind",
    "make_graph",
    "condensation",
    "reachable_from",
    "reachable_to",
    "reaches",
    "strongly_connected_components",
    "transitive_closure",
]
