"""Directed-graph substrate.

The paper's central move is reducing control-flow analysis to *graph
reachability* ("what we establish in this paper is a connection
between control-flow analysis and graph reachability"). This package
provides the graph machinery every analysis builds on: a compact
adjacency-set digraph, BFS/DFS reachability, Tarjan's SCC algorithm,
transitive closure, and a union-find (used by the equality-based CFA
baseline).
"""

from repro.graph.closure import transitive_closure
from repro.graph.digraph import Digraph
from repro.graph.reachability import (
    reachable_from,
    reachable_to,
    reaches,
)
from repro.graph.tarjan import condensation, strongly_connected_components
from repro.graph.unionfind import UnionFind

__all__ = [
    "Digraph",
    "UnionFind",
    "condensation",
    "reachable_from",
    "reachable_to",
    "reaches",
    "strongly_connected_components",
    "transitive_closure",
]
