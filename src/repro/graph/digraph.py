"""A compact directed graph over hashable nodes.

Successor and predecessor sets are both maintained because the
subtransitive engine's demand-driven closure rules need O(degree)
sweeps over *incoming* edges, and the CFA-consuming applications
(Sections 8-9) propagate annotations against edge direction.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable


class _SetView(AbstractSet):
    """Immutable set-like view over a live internal adjacency set.

    Handing out the internal set itself lets any caller mutation
    silently desynchronise ``edge_count`` and the reverse adjacency;
    the view supports the whole read-side ``set`` protocol (iteration,
    membership, ``==`` against real sets, binary operators) while
    mutation is an ``AttributeError`` by construction.
    """

    __slots__ = ("_members",)

    def __init__(self, members: Set[Node]) -> None:
        self._members = members

    def __iter__(self) -> Iterator[Node]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, value: object) -> bool:
        return value in self._members

    @classmethod
    def _from_iterable(cls, iterable):
        # Binary set operations produce plain sets, not views.
        return set(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{view: {set(self._members)!r}}}"


class Digraph:
    """A directed graph with O(1) amortised edge insertion and dedup."""

    backend = "object"

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._edge_count = 0

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (possibly with no edges)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, src: Node, dst: Node) -> bool:
        """Insert edge ``src -> dst``; returns True if it was new."""
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            return False
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def remove_edge(self, src: Node, dst: Node) -> bool:
        """Remove edge ``src -> dst``; returns True if it was present.

        Endpoints stay in the graph even when isolated (node identity
        is owned by the :class:`~repro.core.nodes.NodeFactory`, and an
        isolated node cannot change any reachability answer).
        """
        members = self._succ.get(src)
        if members is None or dst not in members:
            return False
        members.discard(dst)
        self._pred[dst].discard(src)
        self._edge_count -= 1
        return True

    # -- inspection --------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def successors(self, node: Node) -> AbstractSet:
        """Successor set of ``node`` (empty for unknown nodes), as an
        immutable view of the live internal set."""
        members = self._succ.get(node)
        return _EMPTY if members is None else _SetView(members)

    def predecessors(self, node: Node) -> AbstractSet:
        """Predecessor set of ``node`` (empty for unknown nodes)."""
        members = self._pred.get(node)
        return _EMPTY if members is None else _SetView(members)

    def freeze(self) -> "Digraph":
        """API parity with :meth:`repro.graph.csr.CSRDigraph.freeze`;
        the object backend has no compact form, so this is a no-op."""
        return self

    @property
    def frozen(self) -> bool:
        """API parity with the CSR backend (always current)."""
        return True

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, _EMPTY)

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, _EMPTY))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, _EMPTY))

    def reverse(self) -> "Digraph":
        """A new graph with every edge flipped."""
        reversed_graph = Digraph()
        for node in self.nodes():
            reversed_graph.add_node(node)
        for src, dst in self.edges():
            reversed_graph.add_edge(dst, src)
        return reversed_graph

    def copy(self) -> "Digraph":
        duplicate = Digraph()
        for node in self.nodes():
            duplicate.add_node(node)
        for src, dst in self.edges():
            duplicate.add_edge(src, dst)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Digraph nodes={self.node_count} edges={self.edge_count}>"


_EMPTY: Set[Node] = frozenset()  # type: ignore[assignment]
