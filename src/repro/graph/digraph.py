"""A compact directed graph over hashable nodes.

Successor and predecessor sets are both maintained because the
subtransitive engine's demand-driven closure rules need O(degree)
sweeps over *incoming* edges, and the CFA-consuming applications
(Sections 8-9) propagate annotations against edge direction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable


class Digraph:
    """A directed graph with O(1) amortised edge insertion and dedup."""

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._edge_count = 0

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (possibly with no edges)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, src: Node, dst: Node) -> bool:
        """Insert edge ``src -> dst``; returns True if it was new."""
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            return False
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self._edge_count += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    # -- inspection --------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def successors(self, node: Node) -> Set[Node]:
        """Successor set of ``node`` (empty for unknown nodes).

        The returned set is the live internal set; callers must not
        mutate it.
        """
        return self._succ.get(node, _EMPTY)

    def predecessors(self, node: Node) -> Set[Node]:
        """Predecessor set of ``node`` (empty for unknown nodes)."""
        return self._pred.get(node, _EMPTY)

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, _EMPTY)

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, _EMPTY))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, _EMPTY))

    def reverse(self) -> "Digraph":
        """A new graph with every edge flipped."""
        reversed_graph = Digraph()
        for node in self.nodes():
            reversed_graph.add_node(node)
        for src, dst in self.edges():
            reversed_graph.add_edge(dst, src)
        return reversed_graph

    def copy(self) -> "Digraph":
        duplicate = Digraph()
        for node in self.nodes():
            duplicate.add_node(node)
        for src, dst in self.edges():
            duplicate.add_edge(src, dst)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Digraph nodes={self.node_count} edges={self.edge_count}>"


_EMPTY: Set[Node] = frozenset()  # type: ignore[assignment]
