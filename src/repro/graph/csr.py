"""A flat-array graph backend: interned ids + CSR adjacency.

The object :class:`~repro.graph.digraph.Digraph` keeps one Python
``set`` per node and direction, which is flexible but pays hashing and
pointer-chasing costs on every sweep. This module trades that for the
classic compressed-sparse-row layout the paper's linear-time bound
assumes is cheap:

* an :class:`Interner` maps hashable nodes to dense integer ids;
* during the mutable *build* phase adjacency is one append-only list
  of int ids per node and direction, with edge dedup through a set of
  packed ``(src << 32) | dst`` ints — no per-edge tuple allocation;
* :meth:`CSRDigraph.freeze` compacts both directions into
  ``array('i')`` offset/target pairs (the CSR proper), over which the
  reachability primitives run byte-per-node visited marks
  (``bytearray``) and an int worklist instead of node sets;
* any later mutation invalidates the compact form, which is rebuilt
  lazily on the next frozen-path query — the freeze/rebuild lifecycle
  that lets the read-heavy close/query/lint/flow phases run on arrays
  while incremental updates stay possible.

The class is API-compatible with :class:`Digraph` (nodes stay
arbitrary hashables; ``successors``/``predecessors`` return immutable
set-like views), so every existing consumer — the LC' engine, the
flow framework, the lint passes, Tarjan — runs on either backend
unchanged, and the two can be compared edge-for-edge.
"""

from __future__ import annotations

from array import array
from collections.abc import Set as AbstractSet
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

Node = Hashable

#: Id packing shift for the edge-dedup set. Dense ids are indexes into
#: the interner's value list, so 2**32 nodes is unreachable in practice.
_SHIFT = 32


class Interner:
    """A bijection between hashable values and dense integer ids.

    Ids are allocated in first-seen order and never reused, so they
    double as indexes into :attr:`values` and into every per-node
    array a :class:`CSRDigraph` maintains.
    """

    __slots__ = ("_ids", "values")

    def __init__(self) -> None:
        self._ids: Dict[Node, int] = {}
        #: ``values[i]`` is the node interned as id ``i``.
        self.values: List[Node] = []

    def intern(self, value: Node) -> int:
        """The id of ``value``, allocating one on first sight."""
        idx = self._ids.get(value)
        if idx is None:
            idx = len(self.values)
            self._ids[value] = idx
            self.values.append(value)
        return idx

    def id_of(self, value: Node) -> Optional[int]:
        """The id of ``value`` if it was interned, else ``None``."""
        return self._ids.get(value)

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, value: Node) -> bool:
        return value in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interner size={len(self.values)}>"


class _NeighborView(AbstractSet):
    """Immutable set-like view over one adjacency row.

    Compares equal to any set with the same members; mutation is a
    plain ``AttributeError`` (there is no ``add``/``discard``).
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, ids: List[int], values: List[Node]) -> None:
        self._ids = ids
        self._values = values

    def __iter__(self) -> Iterator[Node]:
        return map(self._values.__getitem__, self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, value: object) -> bool:
        values = self._values
        return any(values[i] == value for i in self._ids)

    @classmethod
    def _from_iterable(cls, iterable):
        # Binary set operations produce plain sets, not views.
        return set(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{csr view: {set(self)!r}}}"


_EMPTY_ROW: List[int] = []


class CSRDigraph:
    """A directed graph over hashable nodes with a flat-array core.

    Drop-in compatible with :class:`~repro.graph.digraph.Digraph`;
    see the module docstring for the build/freeze lifecycle.
    """

    backend = "csr"

    def __init__(self) -> None:
        self._interner = Interner()
        #: Append-only per-id adjacency (dedup via ``_edges``).
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []
        #: Packed ``(src << _SHIFT) | dst`` ints, one per edge.
        self._edges: set = set()
        self._edge_count = 0
        #: ``(soff, stgt, poff, ptgt)`` arrays, or None when stale.
        self._frozen: Optional[Tuple[array, array, array, array]] = None

    # -- construction -----------------------------------------------------

    def _id(self, node: Node) -> int:
        idx = self._interner.intern(node)
        if idx == len(self._succ):
            self._succ.append([])
            self._pred.append([])
            self._frozen = None
        return idx

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (possibly with no edges)."""
        self._id(node)

    def add_edge(self, src: Node, dst: Node) -> bool:
        """Insert edge ``src -> dst``; returns True if it was new."""
        # Interning is inlined: this is the engine's hottest call.
        ids = self._interner._ids
        succ = self._succ
        s = ids.get(src)
        if s is None:
            values = self._interner.values
            s = len(values)
            ids[src] = s
            values.append(src)
            succ.append([])
            self._pred.append([])
        d = ids.get(dst)
        if d is None:
            values = self._interner.values
            d = len(values)
            ids[dst] = d
            values.append(dst)
            succ.append([])
            self._pred.append([])
        packed = (s << _SHIFT) | d
        edges = self._edges
        if packed in edges:
            return False
        edges.add(packed)
        succ[s].append(d)
        self._pred[d].append(s)
        self._edge_count += 1
        self._frozen = None
        return True

    def add_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for src, dst in edges:
            self.add_edge(src, dst)

    def remove_edge(self, src: Node, dst: Node) -> bool:
        """Remove edge ``src -> dst``; returns True if it was present.

        The adjacency rows are append-only lists, so removal is an
        O(degree) scan; the incremental daemon only retracts edges
        justified by a retracted definition, so the scans stay
        proportional to the delta's neighbourhood, not the graph.
        Interned node ids are never reclaimed (isolated ids cannot be
        reached, so they never change a query answer).
        """
        ids = self._interner._ids
        s = ids.get(src)
        if s is None:
            return False
        d = ids.get(dst)
        if d is None:
            return False
        packed = (s << _SHIFT) | d
        if packed not in self._edges:
            return False
        self._edges.discard(packed)
        self._succ[s].remove(d)
        self._pred[d].remove(s)
        self._edge_count -= 1
        self._frozen = None
        return True

    # -- freeze/rebuild ----------------------------------------------------

    def freeze(self) -> "CSRDigraph":
        """Compact the adjacency into CSR arrays (idempotent).

        Called by the LC' engine once the close phase reaches its
        fixpoint; any later :meth:`add_edge`/:meth:`add_node` marks
        the compact form stale and the next frozen-path query rebuilds
        it, so incremental updates never see stale arrays.
        """
        self._csr()
        return self

    @property
    def frozen(self) -> bool:
        """Whether the compact CSR form is current."""
        return self._frozen is not None

    def _csr(self) -> Tuple[array, array, array, array]:
        frozen = self._frozen
        if frozen is None:
            frozen = (
                *_compact(self._succ),
                *_compact(self._pred),
            )
            self._frozen = frozen
        return frozen

    # -- inspection --------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._interner

    def __len__(self) -> int:
        return len(self._interner)

    @property
    def node_count(self) -> int:
        return len(self._interner)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> Iterator[Node]:
        return iter(self._interner.values)

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        values = self._interner.values
        for s, row in enumerate(self._succ):
            src = values[s]
            for d in row:
                yield src, values[d]

    def successors(self, node: Node) -> AbstractSet:
        """Successor set of ``node`` (empty for unknown nodes); an
        immutable view over the live adjacency row."""
        idx = self._interner.id_of(node)
        row = _EMPTY_ROW if idx is None else self._succ[idx]
        return _NeighborView(row, self._interner.values)

    def predecessors(self, node: Node) -> AbstractSet:
        """Predecessor set of ``node`` (empty for unknown nodes)."""
        idx = self._interner.id_of(node)
        row = _EMPTY_ROW if idx is None else self._pred[idx]
        return _NeighborView(row, self._interner.values)

    def has_edge(self, src: Node, dst: Node) -> bool:
        ids = self._interner._ids
        s = ids.get(src)
        if s is None:
            return False
        d = ids.get(dst)
        if d is None:
            return False
        return ((s << _SHIFT) | d) in self._edges

    def out_degree(self, node: Node) -> int:
        idx = self._interner.id_of(node)
        return 0 if idx is None else len(self._succ[idx])

    def in_degree(self, node: Node) -> int:
        idx = self._interner.id_of(node)
        return 0 if idx is None else len(self._pred[idx])

    def reverse(self) -> "CSRDigraph":
        """A new graph with every edge flipped."""
        reversed_graph = CSRDigraph()
        for node in self.nodes():
            reversed_graph.add_node(node)
        for src, dst in self.edges():
            reversed_graph.add_edge(dst, src)
        return reversed_graph

    def copy(self) -> "CSRDigraph":
        duplicate = CSRDigraph()
        for node in self.nodes():
            duplicate.add_node(node)
        for src, dst in self.edges():
            duplicate.add_edge(src, dst)
        return duplicate

    # -- flat reachability -------------------------------------------------

    def _start_ids(
        self, sources: Iterable[Node]
    ) -> Tuple[List[int], List[Node]]:
        """Split ``sources`` into interned ids and *extras* — source
        nodes the graph has never seen. Reachability includes its
        sources by contract, so extras are reached (trivially, by
        themselves) even though no array position exists for them."""
        ids = self._interner._ids
        start_ids: List[int] = []
        extras: List[Node] = []
        for source in sources:
            idx = ids.get(source)
            if idx is None:
                extras.append(source)
            else:
                start_ids.append(idx)
        return start_ids, extras

    def _reached_ids(
        self, start_ids: List[int], reverse: bool = False
    ) -> Tuple[bytearray, List[int]]:
        """``(seen, order)`` for the ids reachable from ``start_ids``
        (inclusive): byte marks over the frozen CSR arrays and the int
        worklist itself (every reached id, in visit order) — no node
        objects, no hashing."""
        soff, stgt, poff, ptgt = self._csr()
        if reverse:
            off, tgt = poff, ptgt
        else:
            off, tgt = soff, stgt
        seen = bytearray(len(self._succ))
        order: List[int] = []
        append = order.append
        for s in start_ids:
            if not seen[s]:
                seen[s] = 1
                append(s)
        # The worklist is also the result: iterating a list while
        # appending to it visits the appended tail (CPython semantics),
        # which is exactly a BFS frontier without a cursor.
        for v in order:
            for w in tgt[off[v]:off[v + 1]]:
                if not seen[w]:
                    seen[w] = 1
                    append(w)
        return seen, order

    def reachable_set(
        self, sources: Iterable[Node], reverse: bool = False
    ) -> set:
        """All nodes reachable from ``sources`` (inclusive), walking
        predecessors instead of successors when ``reverse``."""
        start_ids, extras = self._start_ids(sources)
        _, order = self._reached_ids(start_ids, reverse=reverse)
        out = set(map(self._interner.values.__getitem__, order))
        out.update(extras)
        return out

    def reaches_node(self, src: Node, dst: Node) -> bool:
        """Early-exit reachability ``src ->* dst`` (strict: one step
        or more unless ``src is dst`` and present)."""
        ids = self._interner._ids
        s = ids.get(src)
        if s is None:
            return False
        if src == dst:
            return True
        d = ids.get(dst)
        if d is None:
            return False
        soff, stgt, _, _ = self._csr()
        seen = bytearray(len(self._succ))
        seen[s] = 1
        order = [s]
        append = order.append
        for v in order:
            for w in stgt[soff[v]:soff[v + 1]]:
                if w == d:
                    return True
                if not seen[w]:
                    seen[w] = 1
                    append(w)
        return False

    def reaches_any(
        self, sources: Iterable[Node], targets: Iterable[Node]
    ) -> Tuple[bool, int]:
        """Does any source reach any target? Returns ``(answer,
        visited)`` with ``visited`` the number of nodes the early-exit
        search marked (query accounting)."""
        target_list = list(targets)
        target_ids = set()
        stray_targets = []
        ids = self._interner._ids
        for target in target_list:
            idx = ids.get(target)
            if idx is None:
                stray_targets.append(target)
            else:
                target_ids.add(idx)
        start_ids, extras = self._start_ids(sources)
        if stray_targets and extras:
            strays = set(stray_targets)
            if any(extra in strays for extra in extras):
                return True, len(extras)
        soff, stgt, _, _ = self._csr()
        seen = bytearray(len(self._succ))
        order: List[int] = []
        append = order.append
        for s in start_ids:
            if not seen[s]:
                seen[s] = 1
                append(s)
        visited = 0
        for v in order:
            visited += 1
            if v in target_ids:
                return True, visited + len(extras)
            for w in stgt[soff[v]:soff[v + 1]]:
                if not seen[w]:
                    seen[w] = 1
                    append(w)
        return False, len(order) + len(extras)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self.frozen else "mutable"
        return (
            f"<CSRDigraph nodes={self.node_count} "
            f"edges={self.edge_count} {state}>"
        )


def _compact(adjacency: List[List[int]]) -> Tuple[array, array]:
    """One direction's CSR pair: ``offsets`` (n+1 entries) and the
    concatenated ``targets``."""
    offsets = array("l", [0])
    targets = array("i")
    append_offset = offsets.append
    extend_targets = targets.extend
    total = 0
    for row in adjacency:
        extend_targets(row)
        total += len(row)
        append_offset(total)
    return offsets, targets
