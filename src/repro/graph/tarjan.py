"""Tarjan's strongly-connected-components algorithm (iterative).

Used by the transitive-closure routine (collapse SCCs, then propagate
over the DAG) and by graph sanity checks in the test suite. The
implementation is iterative so million-node graphs do not hit the
Python recursion limit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.digraph import Digraph, Node


def strongly_connected_components(graph: Digraph) -> List[List[Node]]:
    """SCCs of ``graph`` in reverse topological order (Tarjan)."""
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = [0]

    for root in list(graph.nodes()):
        if root in index_of:
            continue
        # Each work item is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: Digraph) -> "tuple[Digraph, Dict[Node, int]]":
    """The SCC condensation DAG plus the node -> component-id map.

    Component ids are positions in the reverse-topological SCC list.
    """
    components = strongly_connected_components(graph)
    component_of: Dict[Node, int] = {}
    for cid, members in enumerate(components):
        for node in members:
            component_of[node] = cid
    dag = Digraph()
    for cid in range(len(components)):
        dag.add_node(cid)
    for src, dst in graph.edges():
        a, b = component_of[src], component_of[dst]
        if a != b:
            dag.add_edge(a, b)
    return dag, component_of
