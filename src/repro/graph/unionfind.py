"""Union-find with path compression and union by rank.

This is the engine behind the equality-based CFA baseline
(:mod:`repro.cfa.equality`): the paper contrasts its inclusion-based
linear algorithm with analyses that "replace containment by
unification", which run in almost-linear time via exactly this
structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List

Item = Hashable


class UnionFind:
    """Disjoint sets over arbitrary hashable items (created lazily)."""

    def __init__(self) -> None:
        self._parent: Dict[Item, Item] = {}
        self._rank: Dict[Item, int] = {}
        self.union_count = 0

    def find(self, item: Item) -> Item:
        """Representative of ``item``'s set (item auto-registered)."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._rank[item] = 0
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Item, b: Item) -> Item:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self.union_count += 1
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a: Item, b: Item) -> bool:
        return self.find(a) == self.find(b)

    def items(self) -> Iterator[Item]:
        return iter(self._parent)

    def groups(self) -> Dict[Item, List[Item]]:
        """Map of representative -> members."""
        out: Dict[Item, List[Item]] = {}
        for item in list(self._parent):
            out.setdefault(self.find(item), []).append(item)
        return out

    def __len__(self) -> int:
        return len(self._parent)
