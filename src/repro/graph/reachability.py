"""Reachability on :class:`~repro.graph.digraph.Digraph`.

These are the O(V + E) primitives behind the paper's Algorithms 1
and 2 ("Apply LC' to P; use graph reachability ...").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional, Set

from repro.graph.digraph import Digraph, Node


def reachable_from(
    graph: Digraph,
    sources: Iterable[Node],
    follow: Optional[Callable[[Node], Iterable[Node]]] = None,
) -> Set[Node]:
    """All nodes reachable from ``sources`` (inclusive) via BFS.

    ``follow`` overrides the successor function (the polyvariant
    summariser uses this to extend reachability through ``dom``/``ran``
    formation, as Section 7 requires).
    """
    step = follow if follow is not None else graph.successors
    seen: Set[Node] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for succ in step(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def reachable_to(graph: Digraph, targets: Iterable[Node]) -> Set[Node]:
    """All nodes that can reach some node in ``targets`` (inclusive)."""
    return reachable_from(graph, targets, follow=graph.predecessors)


def reaches(graph: Digraph, src: Node, dst: Node) -> bool:
    """True if ``dst`` is reachable from ``src`` (early-exit BFS)."""
    if src == dst:
        return True
    seen: Set[Node] = {src}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False
