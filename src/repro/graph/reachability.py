"""Reachability on either graph backend.

These are the O(V + E) primitives behind the paper's Algorithms 1
and 2 ("Apply LC' to P; use graph reachability ..."). They accept
both the object :class:`~repro.graph.digraph.Digraph` and the
flat-array :class:`~repro.graph.csr.CSRDigraph`:

* with the default successor/predecessor step on a CSR graph, the
  traversal dispatches to the frozen-array walk (byte marks + int
  worklist) — the hot path of the query phase;
* any *custom* ``follow`` callable (the polyvariant summariser's
  dom/ran extension, for instance) runs the generic BFS, which only
  ever calls ``follow`` — so it works identically on both backends
  and never forces a fallback to the object graph.

Sources are always included in the result, whether or not the graph
contains them — an occurrence's node can be absent from the graph
(no build rule touched it) yet trivially reach itself.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional, Set

from repro.graph.csr import CSRDigraph
from repro.graph.digraph import Digraph, Node


def reachable_from(
    graph: Digraph,
    sources: Iterable[Node],
    follow: Optional[Callable[[Node], Iterable[Node]]] = None,
) -> Set[Node]:
    """All nodes reachable from ``sources`` (inclusive) via BFS.

    ``follow`` overrides the successor function (the polyvariant
    summariser uses this to extend reachability through ``dom``/``ran``
    formation, as Section 7 requires).
    """
    if isinstance(graph, CSRDigraph):
        if follow is None or follow == graph.successors:
            return graph.reachable_set(sources)
        if follow == graph.predecessors:
            return graph.reachable_set(sources, reverse=True)
    step = follow if follow is not None else graph.successors
    seen: Set[Node] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for succ in step(node):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def reachable_to(graph: Digraph, targets: Iterable[Node]) -> Set[Node]:
    """All nodes that can reach some node in ``targets`` (inclusive)."""
    if isinstance(graph, CSRDigraph):
        return graph.reachable_set(targets, reverse=True)
    return reachable_from(graph, targets, follow=graph.predecessors)


def reaches(graph: Digraph, src: Node, dst: Node) -> bool:
    """True if ``dst`` is reachable from ``src`` (early-exit BFS).

    Consistent with :func:`reachable_from`'s membership semantics for
    graph members, but strict about the graph itself: ``reaches(g, x,
    x)`` is False when ``x`` is not a node of ``g`` — there is no
    empty path in a graph that does not contain its endpoints.
    """
    if isinstance(graph, CSRDigraph):
        return graph.reaches_node(src, dst)
    if src not in graph:
        return False
    if src == dst:
        return True
    seen: Set[Node] = {src}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return False
