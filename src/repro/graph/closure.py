"""Transitive closure.

The subtransitive graph is useful precisely because one does *not*
compute its transitive closure; this routine exists for the paper's
correctness statements (Propositions 1-2 relate LC'-reachability to
DTC-derivability) and for small-program oracles in the test suite.

The implementation condenses SCCs first and propagates reachable sets
over the DAG in reverse topological order — O(V * E / wordsize)-ish in
practice via Python set unions, fine for test-sized graphs.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.graph.digraph import Digraph, Node
from repro.graph.tarjan import strongly_connected_components


def transitive_closure(graph: Digraph, reflexive: bool = False) -> Digraph:
    """Return a new graph with an edge ``a -> b`` whenever ``b`` is
    reachable from ``a`` by a nonempty path (or any path when
    ``reflexive``)."""
    components = strongly_connected_components(graph)
    component_of: Dict[Node, int] = {}
    for cid, members in enumerate(components):
        for node in members:
            component_of[node] = cid

    # components are produced in reverse topological order, so every
    # successor component is finished before its predecessors.
    reach: Dict[int, Set[int]] = {}
    cyclic: Dict[int, bool] = {}
    for cid, members in enumerate(components):
        acc: Set[int] = set()
        has_self_loop = len(members) > 1
        for node in members:
            for succ in graph.successors(node):
                scid = component_of[succ]
                if scid == cid:
                    has_self_loop = True
                else:
                    acc.add(scid)
                    acc |= reach[scid]
        reach[cid] = acc
        cyclic[cid] = has_self_loop

    closure = Digraph()
    for node in graph.nodes():
        closure.add_node(node)
    for node in graph.nodes():
        cid = component_of[node]
        targets: Set[Node] = set()
        for rcid in reach[cid]:
            targets.update(components[rcid])
        if cyclic[cid]:
            targets.update(components[cid])
        for target in targets:
            closure.add_edge(node, target)
        if reflexive:
            closure.add_edge(node, node)
        elif node in targets:
            pass  # already added via the cyclic case
    return closure
