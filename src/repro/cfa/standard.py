"""The standard (cubic-time) inclusion-based monovariant CFA.

This is the paper's Section 2 baseline: "the least association of
label sets that satisfies

* for any abstraction \\^l x.e, l in L(\\^l x.e), and
* for any application (e1 e2), if l in L(e1) and l labels \\^l x.e,
  then L(x) >= L(e2) and L((e1 e2)) >= L(e)

computed as a least fixed point". The implementation is the classic
constraint-graph worklist: token arrival at an application's operator
position installs the two inclusion edges for the discovered callee.

Records, datatypes and reference cells are handled in the usual
set-based style (tokens for record/constructor/ref creation sites,
conditional inclusion edges at projections / case branches / reads /
writes), so the baseline covers the same language the subtransitive
engine does.

The ``work`` counter counts token propagations — the paper's Table 1
reports "a measure of the units of work involved" precisely because
raw timings are noisy; we reproduce that measure.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from repro._util import ensure_recursion_limit
from repro.cfa.base import (
    CFAResult,
    FlowKey,
    ValueToken,
    cell_key,
    key_of,
    var_key,
)
from repro.lang.ast import (
    App,
    Assign,
    Case,
    Con,
    Deref,
    Expr,
    If,
    Lam,
    Let,
    Letrec,
    Lit,
    Prim,
    Program,
    Proj,
    Record,
    Ref,
    Var,
)


class StandardCFAResult(CFAResult):
    """Completed standard CFA with its work/size accounting."""

    def __init__(
        self,
        program: Program,
        sets: Dict[FlowKey, Set[ValueToken]],
        work: int,
        edge_count: int,
    ):
        super().__init__(program)
        self._sets = sets
        #: Number of token propagations performed (the paper's "units
        #: of work" measure for Table 1).
        self.work = work
        #: Number of inclusion edges installed (base + discovered).
        self.edge_count = edge_count

    def tokens_at(self, key: FlowKey) -> Set[ValueToken]:
        return self._sets.get(key, set())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StandardCFAResult work={self.work} "
            f"edges={self.edge_count}>"
        )


class _Solver:
    """Worklist solver for the inclusion constraint system.

    With ``live_only`` the solver implements the dead-code-aware
    variant the paper's introduction lists as a design axis ("does the
    analysis take into account which pieces of a program can actually
    be called?"): constraints are generated lazily as expressions
    become *live* — the root is live, a live expression's children are
    live except abstraction bodies, and an abstraction's body becomes
    live only when the abstraction is applied at a live call site.
    """

    def __init__(self, program: Program, live_only: bool = False):
        self.program = program
        self.live_only = live_only
        self.live: Set[int] = set()
        self.sets: Dict[FlowKey, Set[ValueToken]] = {}
        self.succs: Dict[FlowKey, List[FlowKey]] = {}
        self.edges: Set[Tuple[FlowKey, FlowKey]] = set()
        # Conditional-rule watch tables: operator/subject key -> sites.
        self.app_sites: Dict[FlowKey, List[App]] = {}
        self.proj_sites: Dict[FlowKey, List[Proj]] = {}
        self.case_sites: Dict[FlowKey, List[Case]] = {}
        self.deref_sites: Dict[FlowKey, List[Deref]] = {}
        self.assign_sites: Dict[FlowKey, List[Assign]] = {}
        self.worklist: Deque[Tuple[FlowKey, ValueToken]] = deque()
        self.work = 0

    # -- constraint primitives ---------------------------------------------

    def add_token(self, key: FlowKey, token: ValueToken) -> None:
        # Each attempted propagation is one unit of work — this is the
        # paper's cubic measure (set-membership churn), whether or not
        # the token is new at ``key``.
        self.work += 1
        bucket = self.sets.setdefault(key, set())
        if token not in bucket:
            bucket.add(token)
            self.worklist.append((key, token))

    def add_subset(self, src: FlowKey, dst: FlowKey) -> None:
        """Install the inclusion L(dst) >= L(src)."""
        if src == dst or (src, dst) in self.edges:
            return
        self.edges.add((src, dst))
        self.succs.setdefault(src, []).append(dst)
        for token in list(self.sets.get(src, ())):
            self.add_token(dst, token)

    # -- base constraint generation -----------------------------------------

    def generate(self) -> None:
        if self.live_only:
            self.mark_live(self.program.root)
            return
        for node in self.program.nodes:
            self._generate(node)

    def mark_live(self, expr: Expr) -> None:
        """Make ``expr`` (and its non-lambda-body descendants) live,
        generating their constraints on first touch."""
        stack = [expr]
        while stack:
            node = stack.pop()
            if node.nid in self.live:
                continue
            self.live.add(node.nid)
            self._generate(node)
            for child in node.children():
                if isinstance(node, Lam):
                    continue  # bodies wait for an application
                stack.append(child)

    def _generate(self, node: Expr) -> None:
        if isinstance(node, Var):
            self.add_subset(var_key(node.name), key_of(node))
        elif isinstance(node, Lam):
            self.add_token(key_of(node), node)
        elif isinstance(node, App):
            self.app_sites.setdefault(key_of(node.fn), []).append(node)
        elif isinstance(node, Let):
            self.add_subset(key_of(node.bound), var_key(node.name))
            self.add_subset(key_of(node.body), key_of(node))
        elif isinstance(node, Letrec):
            self.add_subset(key_of(node.bound), var_key(node.name))
            self.add_subset(key_of(node.body), key_of(node))
        elif isinstance(node, Record):
            self.add_token(key_of(node), node)
        elif isinstance(node, Proj):
            self.proj_sites.setdefault(key_of(node.expr), []).append(node)
        elif isinstance(node, Con):
            self.add_token(key_of(node), node)
        elif isinstance(node, Case):
            self.case_sites.setdefault(
                key_of(node.scrutinee), []
            ).append(node)
            for branch in node.branches:
                self.add_subset(key_of(branch.body), key_of(node))
        elif isinstance(node, If):
            self.add_subset(key_of(node.then), key_of(node))
            self.add_subset(key_of(node.orelse), key_of(node))
        elif isinstance(node, Ref):
            self.add_token(key_of(node), node)
            self.add_subset(key_of(node.expr), cell_key(node))
        elif isinstance(node, Deref):
            self.deref_sites.setdefault(key_of(node.expr), []).append(node)
        elif isinstance(node, Assign):
            self.assign_sites.setdefault(
                key_of(node.target), []
            ).append(node)
        elif isinstance(node, (Lit, Prim)):
            pass  # ground results; arguments are not invoked
        else:
            raise TypeError(
                f"unknown expression node {type(node).__name__}"
            )

    # -- fixpoint -----------------------------------------------------------

    def solve(self) -> None:
        pop = self.worklist.popleft
        while self.worklist:
            key, token = pop()
            for dst in self.succs.get(key, ()):
                self.add_token(dst, token)
            self._trigger(key, token)

    def _trigger(self, key: FlowKey, token: ValueToken) -> None:
        if isinstance(token, Lam):
            for site in self.app_sites.get(key, ()):
                if self.live_only:
                    self.mark_live(token.body)
                self.add_subset(key_of(site.arg), var_key(token.param))
                self.add_subset(key_of(token.body), key_of(site))
        elif isinstance(token, Record):
            for site in self.proj_sites.get(key, ()):
                if site.index <= token.arity:
                    self.add_subset(
                        key_of(token.fields[site.index - 1]), key_of(site)
                    )
        elif isinstance(token, Con):
            for site in self.case_sites.get(key, ()):
                for branch in site.branches:
                    if branch.cname != token.cname:
                        continue
                    for param, arg in zip(branch.params, token.args):
                        self.add_subset(key_of(arg), var_key(param))
        elif isinstance(token, Ref):
            for site in self.deref_sites.get(key, ()):
                self.add_subset(cell_key(token), key_of(site))
            for site in self.assign_sites.get(key, ()):
                self.add_subset(key_of(site.value), cell_key(token))


def analyze_standard(
    program: Program, live_only: bool = False
) -> StandardCFAResult:
    """Run the standard cubic-time monovariant CFA on ``program``.

    ``live_only`` enables the dead-code-aware variant: only code the
    developing analysis proves reachable contributes constraints, so
    abstractions mentioned exclusively in dead code never pollute any
    label set. The default (paper-standard) analyses everything.
    """
    ensure_recursion_limit()
    solver = _Solver(program, live_only=live_only)
    solver.generate()
    solver.solve()
    return StandardCFAResult(
        program, solver.sets, solver.work, len(solver.edges)
    )
