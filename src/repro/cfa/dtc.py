"""The DTC transition system: standard CFA as dynamic transitive closure.

Section 3 of the paper reformulates standard CFA as a transition
system over program nodes::

    (ABS)    \\^l x.e -> \\^l x.e
    (APP-1)  e1 ->* \\^l x.e  =>  x -> e2         (for (e1 e2) in P)
    (APP-2)  e1 ->* \\^l x.e  =>  (e1 e2) -> e    (for (e1 e2) in P)
    (TRANS)  e1 -> e2, e2 -> e3  =>  e1 -> e3

"In effect, the four deduction rules define a dynamic transitive
closure problem: ABS sets up some initial edges, TRANS is transitive
closure, and APP-1 and APP-2 add new basic edges as the transitive
closure proceeds."

We implement it exactly that way: an explicit *basic-edge* graph plus
a derived-facts table ``facts[n] = { value nodes derivable at n }``
(the paper notes TRANS may be restricted to abstraction right-hand
sides; we keep the analogous restriction to value nodes). The engine
is an independent implementation of the same semantics as
:mod:`repro.cfa.standard`, which the test suite exploits for
cross-validation; it also exposes the basic-edge graph so Proposition
1 (LC-paths <=> DTC-derivability) can be tested directly.

The language extensions (records, datatypes, refs) get the analogous
"discovered basic edge" treatment.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Set, Tuple

from repro._util import ensure_recursion_limit
from repro.cfa.base import (
    CFAResult,
    FlowKey,
    ValueToken,
    cell_key,
    key_of,
    var_key,
)
from repro.graph.digraph import Digraph
from repro.lang.ast import (
    App,
    Assign,
    Case,
    Con,
    Deref,
    Expr,
    If,
    Lam,
    Let,
    Letrec,
    Lit,
    Prim,
    Program,
    Proj,
    Record,
    Ref,
    Var,
)


class DTCResult(CFAResult):
    """Completed DTC run: derived facts plus the basic-edge graph."""

    def __init__(
        self,
        program: Program,
        facts: Dict[FlowKey, Set[ValueToken]],
        basic_edges: Digraph,
        derivations: int,
    ):
        super().__init__(program)
        self._facts = facts
        #: The basic-edge graph (an edge ``m -> n`` means "anything
        #: derivable from n is derivable from m").
        self.basic_edges = basic_edges
        #: Number of fact derivations performed.
        self.derivations = derivations

    def tokens_at(self, key: FlowKey) -> Set[ValueToken]:
        return self._facts.get(key, set())

    def derivable(self, expr: Expr, lam: Lam) -> bool:
        """Is ``expr -> lam`` derivable in DTC? (Proposition 1 LHS.)"""
        return lam in self.tokens_at(key_of(expr))


class _Engine:
    def __init__(self, program: Program):
        self.program = program
        self.graph = Digraph()
        self.facts: Dict[FlowKey, Set[ValueToken]] = {}
        self.worklist: Deque[Tuple[FlowKey, ValueToken]] = deque()
        self.derivations = 0
        self.app_sites: Dict[FlowKey, List[App]] = {}
        self.proj_sites: Dict[FlowKey, List[Proj]] = {}
        self.case_sites: Dict[FlowKey, List[Case]] = {}
        self.deref_sites: Dict[FlowKey, List[Deref]] = {}
        self.assign_sites: Dict[FlowKey, List[Assign]] = {}

    def add_fact(self, key: FlowKey, token: ValueToken) -> None:
        bucket = self.facts.setdefault(key, set())
        if token not in bucket:
            bucket.add(token)
            self.worklist.append((key, token))

    def add_basic_edge(self, src: FlowKey, dst: FlowKey) -> None:
        """Add ``src -> dst``: src derives whatever dst derives."""
        if self.graph.add_edge(src, dst):
            for token in list(self.facts.get(dst, ())):
                self.add_fact(src, token)

    # -- initial edges and facts ---------------------------------------------

    def seed(self) -> None:
        for node in self.program.nodes:
            self._seed(node)

    def _seed(self, node: Expr) -> None:
        if isinstance(node, Var):
            # An occurrence derives what its variable derives.
            self.add_basic_edge(key_of(node), var_key(node.name))
        elif isinstance(node, Lam):
            self.add_fact(key_of(node), node)  # the ABS axiom
        elif isinstance(node, App):
            self.app_sites.setdefault(key_of(node.fn), []).append(node)
        elif isinstance(node, Let):
            self.add_basic_edge(var_key(node.name), key_of(node.bound))
            self.add_basic_edge(key_of(node), key_of(node.body))
        elif isinstance(node, Letrec):
            self.add_basic_edge(var_key(node.name), key_of(node.bound))
            self.add_basic_edge(key_of(node), key_of(node.body))
        elif isinstance(node, Record):
            self.add_fact(key_of(node), node)
        elif isinstance(node, Proj):
            self.proj_sites.setdefault(key_of(node.expr), []).append(node)
        elif isinstance(node, Con):
            self.add_fact(key_of(node), node)
        elif isinstance(node, Case):
            self.case_sites.setdefault(
                key_of(node.scrutinee), []
            ).append(node)
            for branch in node.branches:
                self.add_basic_edge(key_of(node), key_of(branch.body))
        elif isinstance(node, If):
            self.add_basic_edge(key_of(node), key_of(node.then))
            self.add_basic_edge(key_of(node), key_of(node.orelse))
        elif isinstance(node, Ref):
            self.add_fact(key_of(node), node)
            self.add_basic_edge(cell_key(node), key_of(node.expr))
        elif isinstance(node, Deref):
            self.deref_sites.setdefault(key_of(node.expr), []).append(node)
        elif isinstance(node, Assign):
            self.assign_sites.setdefault(
                key_of(node.target), []
            ).append(node)
        elif isinstance(node, (Lit, Prim)):
            pass
        else:
            raise TypeError(
                f"unknown expression node {type(node).__name__}"
            )

    # -- closure -----------------------------------------------------------

    def run(self) -> None:
        pop = self.worklist.popleft
        while self.worklist:
            key, token = pop()
            self.derivations += 1
            # TRANS (restricted to value right-hand sides): every
            # basic-edge predecessor derives this token too.
            for pred in self.graph.predecessors(key):
                self.add_fact(pred, token)
            self._discover(key, token)

    def _discover(self, key: FlowKey, token: ValueToken) -> None:
        if isinstance(token, Lam):
            for site in self.app_sites.get(key, ()):
                # APP-1: x -> e2 ; APP-2: (e1 e2) -> body.
                self.add_basic_edge(var_key(token.param), key_of(site.arg))
                self.add_basic_edge(key_of(site), key_of(token.body))
        elif isinstance(token, Record):
            for site in self.proj_sites.get(key, ()):
                if site.index <= token.arity:
                    self.add_basic_edge(
                        key_of(site), key_of(token.fields[site.index - 1])
                    )
        elif isinstance(token, Con):
            for site in self.case_sites.get(key, ()):
                for branch in site.branches:
                    if branch.cname != token.cname:
                        continue
                    for param, arg in zip(branch.params, token.args):
                        self.add_basic_edge(var_key(param), key_of(arg))
        elif isinstance(token, Ref):
            for site in self.deref_sites.get(key, ()):
                self.add_basic_edge(key_of(site), cell_key(token))
            for site in self.assign_sites.get(key, ()):
                self.add_basic_edge(cell_key(token), key_of(site.value))


def analyze_dtc(program: Program) -> DTCResult:
    """Run the DTC transition system to its least fixed point."""
    ensure_recursion_limit()
    engine = _Engine(program)
    engine.seed()
    engine.run()
    return DTCResult(
        program, engine.facts, engine.graph, engine.derivations
    )
