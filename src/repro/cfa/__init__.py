"""Baseline control-flow analyses.

Three reference points the paper measures its contribution against:

* :mod:`repro.cfa.standard` — the standard cubic-time inclusion-based
  monovariant CFA (Section 2), which also stands in for set-based
  analysis run in monovariant mode (the comparator in Section 10);
* :mod:`repro.cfa.dtc` — the paper's Section-3 reformulation of
  standard CFA as a dynamic-transitive-closure transition system
  (rules ABS / APP-1 / APP-2 / TRANS);
* :mod:`repro.cfa.equality` — the equality-based (unification) CFA in
  the style of Bondorf & Jorgensen, almost-linear but strictly less
  accurate; the paper's conclusion contrasts it with the subtransitive
  approach.
"""

from repro.cfa.base import CFAResult, FlowKey, key_of
from repro.cfa.dtc import DTCResult, analyze_dtc
from repro.cfa.equality import EqualityCFAResult, analyze_equality
from repro.cfa.standard import StandardCFAResult, analyze_standard

__all__ = [
    "CFAResult",
    "DTCResult",
    "EqualityCFAResult",
    "FlowKey",
    "StandardCFAResult",
    "analyze_dtc",
    "analyze_equality",
    "analyze_standard",
    "key_of",
]
