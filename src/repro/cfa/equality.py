"""Equality-based (unification) control-flow analysis.

The paper's introduction notes that implementors such as Bondorf and
Jorgensen "employ an equality-based algorithm for CFA because the
equality-based flow analysis can be done in almost-linear time whereas
an inclusion-based analysis is expected to be at least cubic", and the
conclusion positions the subtransitive algorithm against analyses that
"replace containment by unification ... and as a result compute
information that is strictly less accurate than standard CFA".

This module implements that baseline: every inclusion constraint of
the standard analysis becomes an *equality*, solved with union-find.
Each equivalence-class root carries

* the set of abstraction/record/constructor/ref tokens in the class,
* lazily-created ``dom``/``ran``/``proj_j``/``c~j``/``cell`` slot
  classes, unified recursively when two roots merge.

There is no occurs check, so the analysis terminates (almost-linearly)
even on self-applicative untyped programs. The result is a sound
*superset* of standard CFA — the accuracy-loss benchmark (E11)
quantifies how much bigger.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Tuple

from repro._util import ensure_recursion_limit
from repro.cfa.base import (
    CFAResult,
    FlowKey,
    ValueToken,
    cell_key,
    key_of,
    var_key,
)
from repro.graph.unionfind import UnionFind
from repro.lang.ast import (
    App,
    Assign,
    Case,
    Con,
    Deref,
    Expr,
    If,
    Lam,
    Let,
    Letrec,
    Lit,
    Prim,
    Program,
    Proj,
    Record,
    Ref,
    Var,
)

#: Slot keys hang off an equivalence-class root.
SlotKey = Tuple


class EqualityCFAResult(CFAResult):
    """Completed unification-based CFA."""

    def __init__(
        self,
        program: Program,
        uf: UnionFind,
        tokens: Dict[object, Set[ValueToken]],
    ):
        super().__init__(program)
        self._uf = uf
        self._tokens = tokens

    def tokens_at(self, key: FlowKey) -> Set[ValueToken]:
        return self._tokens.get(self._uf.find(("k", key)), set())

    def same_class(self, a: Expr, b: Expr) -> bool:
        """Were the two occurrences unified into one flow class?"""
        return self._uf.same(("k", key_of(a)), ("k", key_of(b)))


class _Unifier:
    """Union-find with recursive slot unification (Steensgaard-style)."""

    def __init__(self) -> None:
        self.uf = UnionFind()
        self.tokens: Dict[object, Set[ValueToken]] = {}
        self.slots: Dict[object, Dict[SlotKey, object]] = {}
        self.pending: Deque[Tuple[object, object]] = deque()
        self._fresh = 0

    def ecr(self, key: FlowKey) -> object:
        return self.uf.find(("k", key))

    def add_token(self, key: FlowKey, token: ValueToken) -> None:
        root = self.ecr(key)
        self.tokens.setdefault(root, set()).add(token)

    def slot(self, key: FlowKey, slot: SlotKey) -> FlowKey:
        """The flow key of ``slot`` on ``key``'s class (lazily made)."""
        root = self.ecr(key)
        table = self.slots.setdefault(root, {})
        if slot not in table:
            self._fresh += 1
            table[slot] = ("s", self._fresh, slot)
        return table[slot]

    def unify_keys(self, a: FlowKey, b: FlowKey) -> None:
        self.pending.append((("k", a), ("k", b)))
        self.drain()

    def drain(self) -> None:
        while self.pending:
            left, right = self.pending.popleft()
            ra, rb = self.uf.find(left), self.uf.find(right)
            if ra == rb:
                continue
            merged = self.uf.union(ra, rb)
            other = rb if merged == ra else ra
            # Merge token sets.
            if other in self.tokens:
                self.tokens.setdefault(merged, set()).update(
                    self.tokens.pop(other)
                )
            # Merge slot tables, unifying shared slots recursively.
            other_slots = self.slots.pop(other, None)
            if other_slots:
                mine = self.slots.setdefault(merged, {})
                for slot_key, slot_val in other_slots.items():
                    if slot_key in mine:
                        self.pending.append(
                            (("k", mine[slot_key]), ("k", slot_val))
                        )
                    else:
                        mine[slot_key] = slot_val


def analyze_equality(program: Program) -> EqualityCFAResult:
    """Run the almost-linear unification-based CFA."""
    ensure_recursion_limit()
    u = _Unifier()
    for node in program.nodes:
        if isinstance(node, Var):
            u.unify_keys(var_key(node.name), key_of(node))
        elif isinstance(node, Lam):
            u.add_token(key_of(node), node)
            u.unify_keys(
                u.slot(key_of(node), ("dom",)), var_key(node.param)
            )
            u.unify_keys(
                u.slot(key_of(node), ("ran",)), key_of(node.body)
            )
        elif isinstance(node, App):
            u.unify_keys(
                u.slot(key_of(node.fn), ("dom",)), key_of(node.arg)
            )
            u.unify_keys(
                u.slot(key_of(node.fn), ("ran",)), key_of(node)
            )
        elif isinstance(node, (Let, Letrec)):
            u.unify_keys(key_of(node.bound), var_key(node.name))
            u.unify_keys(key_of(node.body), key_of(node))
        elif isinstance(node, Record):
            u.add_token(key_of(node), node)
            for index, field in enumerate(node.fields, start=1):
                u.unify_keys(
                    u.slot(key_of(node), ("proj", index)), key_of(field)
                )
        elif isinstance(node, Proj):
            u.unify_keys(
                u.slot(key_of(node.expr), ("proj", node.index)),
                key_of(node),
            )
        elif isinstance(node, Con):
            u.add_token(key_of(node), node)
            for index, arg in enumerate(node.args, start=1):
                u.unify_keys(
                    u.slot(key_of(node), ("con", node.cname, index)),
                    key_of(arg),
                )
        elif isinstance(node, Case):
            for branch in node.branches:
                for index, param in enumerate(branch.params, start=1):
                    u.unify_keys(
                        u.slot(
                            key_of(node.scrutinee),
                            ("con", branch.cname, index),
                        ),
                        var_key(param),
                    )
                u.unify_keys(key_of(branch.body), key_of(node))
        elif isinstance(node, If):
            u.unify_keys(key_of(node.then), key_of(node))
            u.unify_keys(key_of(node.orelse), key_of(node))
        elif isinstance(node, Ref):
            u.add_token(key_of(node), node)
            u.unify_keys(
                u.slot(key_of(node), ("cell",)), cell_key(node)
            )
            u.unify_keys(key_of(node.expr), cell_key(node))
        elif isinstance(node, Deref):
            u.unify_keys(
                u.slot(key_of(node.expr), ("cell",)), key_of(node)
            )
        elif isinstance(node, Assign):
            u.unify_keys(
                u.slot(key_of(node.target), ("cell",)),
                key_of(node.value),
            )
        elif isinstance(node, (Lit, Prim)):
            pass
        else:
            raise TypeError(
                f"unknown expression node {type(node).__name__}"
            )
    return EqualityCFAResult(program, u.uf, u.tokens)
