"""Shared vocabulary for all control-flow analyses.

**Flow keys.** Every analysis associates information with (a) each
expression *occurrence* and (b) each variable. After alpha-renaming,
variables are globally distinct, so a flow key is either an ``int``
(the occurrence's ``nid``) or a ``str`` (the variable's name) — the
two domains are disjoint and hash cheaply.

**Abstract values.** The analyses track four kinds of values by their
creation site: abstractions (``Lam``), records (``Record``),
datatype values (``Con``) and reference cells (``Ref``). The AST
occurrence object itself is the token — identity-hashed, unique, and
carrying the label when it is an abstraction.

**Result interface.** :class:`CFAResult` is the common query surface
(label sets per occurrence, callees per call site) that lets the test
suite compare any two analyses and lets the CFA-consuming applications
accept any backend.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Union

from repro.errors import QueryError
from repro.lang.ast import App, Con, Expr, Lam, Program, Record, Ref, Var

#: A flow key: an occurrence ``nid`` or a variable name.
FlowKey = Union[int, str]

#: A value token: the AST occurrence that creates the value.
ValueToken = Union[Lam, Record, Con, Ref]


def key_of(expr: Expr) -> FlowKey:
    """The flow key of an expression occurrence."""
    return expr.nid


def var_key(name: str) -> FlowKey:
    """The flow key of a variable."""
    return name


def cell_key(ref: Ref) -> FlowKey:
    """The flow key holding the contents of the cell allocated at
    ``ref`` (distinct from the key of the ``ref`` expression itself)."""
    return f"~cell:{ref.nid}"


def labels_of_tokens(tokens: Set[ValueToken]) -> FrozenSet[str]:
    """Extract abstraction labels from a token set."""
    return frozenset(t.label for t in tokens if isinstance(t, Lam))


class CFAResult:
    """Common query interface over a completed analysis.

    Subclasses must implement :meth:`tokens_at`; everything else is
    derived. ``program`` is the analysed program.
    """

    def __init__(self, program: Program):
        self.program = program

    # -- required ---------------------------------------------------------

    def tokens_at(self, key: FlowKey) -> Set[ValueToken]:
        """The abstract values that may flow to ``key``."""
        raise NotImplementedError

    # -- derived queries ----------------------------------------------------

    def _check(self, expr: Expr) -> None:
        if expr.nid < 0 or expr.nid >= self.program.size:
            raise QueryError(
                f"expression #{expr.nid} is not part of the analysed program"
            )
        if self.program.node(expr.nid) is not expr:
            raise QueryError(
                f"expression #{expr.nid} belongs to a different program"
            )

    def labels_of(self, expr: Expr) -> FrozenSet[str]:
        """The label set L(e): labels of abstractions that may reach
        occurrence ``expr``."""
        self._check(expr)
        return labels_of_tokens(self.tokens_at(key_of(expr)))

    def labels_of_var(self, name: str) -> FrozenSet[str]:
        """The label set of variable ``name``."""
        return labels_of_tokens(self.tokens_at(var_key(name)))

    def is_label_in(self, label: str, expr: Expr) -> bool:
        """The membership query "is l in L(e)?"."""
        return label in self.labels_of(expr)

    def may_call(self, site: App) -> FrozenSet[str]:
        """Labels of the functions callable from application ``site``."""
        self._check(site)
        return self.labels_of(site.fn)

    def expressions_with_label(self, label: str) -> List[Expr]:
        """All occurrences ``e`` with ``label in L(e)`` (the paper's
        third query)."""
        self.program.abstraction(label)  # validate the label
        return [
            node
            for node in self.program.nodes
            if label in self.labels_of(node)
        ]

    def all_label_sets(self) -> Dict[int, FrozenSet[str]]:
        """L(e) for every occurrence, keyed by ``nid`` (the paper's
        "all label sets" output, inherently quadratic in size)."""
        return {
            node.nid: self.labels_of(node) for node in self.program.nodes
        }

    def call_graph(self) -> Dict[int, FrozenSet[str]]:
        """Callable labels per application site ("all functions called
        from all call sites"), keyed by the application's ``nid``."""
        return {
            site.nid: self.may_call(site)
            for site in self.program.applications
        }
