"""Tests for the polyvariant analysis (paper Section 7).

The target semantics: "equivalent to doing a monomorphic analysis of
the let-expanded P, without doing the explicit let-expansion". We
check exactly that, via the explicit let-expansion oracle.
"""

import pytest

from repro.cfa.standard import analyze_standard
from repro.core.polyvariant import (
    analyze_polyvariant,
    choose_polyvariant_binders,
    summarize_fragment,
)
from repro.core.queries import analyze_subtransitive
from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse
from repro.lang.letexpand import let_expand


def project(labels, origin):
    """Map copied labels back to their originals."""
    return frozenset(origin.get(label, label) for label in labels)


class TestBinderSelection:
    def test_lambda_lets_selected(self):
        prog = parse("let id = fn x => x in id id")
        assert choose_polyvariant_binders(prog) == {"id"}

    def test_non_lambda_lets_skipped(self):
        prog = parse("let one = 1 in one + one")
        assert choose_polyvariant_binders(prog) == frozenset()

    def test_letrec_selected(self):
        prog = parse("letrec f = fn x => f x in f")
        assert choose_polyvariant_binders(prog) == {"f"}


class TestPrecisionGain:
    SRC = (
        "let id = fn[id] x => x in "
        "(id (fn[a] p => p), id (fn[b] q => q))"
    )

    def test_monovariant_conflates(self):
        prog = parse(self.SRC)
        mono = analyze_subtransitive(prog)
        first, second = prog.root.body.fields
        assert mono.labels_of(first) == {"a", "b"}

    def test_polyvariant_separates(self):
        prog = parse(self.SRC)
        poly = analyze_polyvariant(prog)
        first, second = prog.root.body.fields
        assert poly.labels_of(first) == {"a"}
        assert poly.labels_of(second) == {"b"}

    def test_polyvariant_at_least_as_precise_everywhere(self):
        prog = parse(self.SRC)
        mono = analyze_subtransitive(prog)
        poly = analyze_polyvariant(prog)
        for node in prog.nodes:
            assert poly.labels_of(node) <= mono.labels_of(node)


class TestLetExpansionEquivalence:
    SOURCES = [
        "let id = fn[id] x => x in (id (fn[a] p => p), id (fn[b] q => q))",
        "let id = fn[id] x => x in ((id id) id) (fn[k] z => z)",
        (
            "let apply = fn[apply] f => fn[ap2] v => f v in "
            "(apply (fn[a] x => x) (fn[c] w => w), "
            "apply (fn[b] y => y) (fn[d] u => u))"
        ),
        (
            "let twice = fn[twice] f => fn[tw2] x => f (f x) in "
            "(twice (fn[a] p => p) (fn[c] w => w), "
            "twice (fn[b] q => q) (fn[d] u => u))"
        ),
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_call_sites_match_expansion(self, src):
        prog = parse(src)
        poly = analyze_polyvariant(prog)

        expanded, origin = let_expand(prog)
        oracle = analyze_standard(expanded)

        # Compare the overall result and the record fields, projected
        # back to original labels.
        assert project(
            oracle.labels_of(expanded.root), origin
        ) == poly.labels_of(prog.root)

    @pytest.mark.parametrize("src", SOURCES)
    def test_poly_never_worse_than_expansion(self, src):
        # Every polyvariant answer is contained in the monovariant
        # one, and contains the expansion oracle's projection.
        prog = parse(src)
        poly = analyze_polyvariant(prog)
        mono = analyze_subtransitive(prog)
        assert poly.labels_of(prog.root) <= mono.labels_of(prog.root)


class TestRecursionAndBudget:
    def test_polyvariant_letrec_terminates(self):
        src = (
            "letrec f = fn[f] n => if n < 1 then 0 else f (n - 1) in "
            "(f 3, f 4)"
        )
        prog = parse(src)
        poly = analyze_polyvariant(prog)
        site = prog.applications[0]
        assert poly.may_call(site) == {"f"}

    def test_instance_budget_trips(self):
        # Nested polymorphic lets multiply instances; a tiny budget
        # must trip rather than hang.
        src = (
            "let a = fn x => x in "
            "let b = fn y => a (a y) in "
            "let c = fn z => b (b z) in "
            "(c (fn w => w), c (fn v => v))"
        )
        prog = parse(src)
        with pytest.raises(AnalysisBudgetExceeded):
            analyze_polyvariant(prog, instance_budget=3)

    def test_explicit_binder_subset(self):
        prog = parse(self_src := TestPrecisionGain.SRC)
        poly = analyze_polyvariant(prog, binders=frozenset())
        # No binders duplicated -> same as monovariant.
        mono = analyze_subtransitive(prog)
        for node in prog.nodes:
            assert poly.labels_of(node) == mono.labels_of(node)


class TestPolyvariantQueryInvariants:
    """The generic query surface stays internally consistent when
    nodes live under multiple contexts."""

    SRC = (
        "let id = fn[id] x => x in "
        "(id (fn[a] p => p), id (fn[b] q => q))"
    )

    def test_all_label_sets_matches_pointwise(self):
        prog = parse(self.SRC)
        poly = analyze_polyvariant(prog)
        table = poly.all_label_sets()
        for node in prog.nodes:
            assert table[node.nid] == poly.labels_of(node), node.nid

    def test_reverse_query_matches_forward(self):
        prog = parse(self.SRC)
        poly = analyze_polyvariant(prog)
        for lam in prog.abstractions:
            backwards = {
                e.nid for e in poly.expressions_with_label(lam.label)
            }
            forwards = {
                n.nid
                for n in prog.nodes
                if lam.label in poly.labels_of(n)
            }
            assert backwards == forwards, lam.label

    def test_is_label_in_consistent(self):
        prog = parse(self.SRC)
        poly = analyze_polyvariant(prog)
        for node in prog.nodes:
            for label in prog.labels:
                assert poly.is_label_in(label, node) == (
                    label in poly.labels_of(node)
                )


class TestSummarisation:
    def test_paper_compression_example(self):
        # Section 7: e = \z.((\y.z) nil) compresses to just
        # ran(e) -> dom(e).
        src = "(fn[e] z => (fn[y] y1 => z) 0) (fn[arg] w => w)"
        prog = parse(src)
        sub = analyze_subtransitive(prog)
        lam = prog.abstraction("e")
        summary = summarize_fragment(sub.sub, lam)
        assert len(summary.critical) == 2
        by_kind = {
            node.opkey[0]: node for node in summary.critical
        }
        edges = {
            (src_node.opkey[0], dst_node.opkey[0])
            for src_node, dst_node in summary.edges
        }
        assert ("ran", "dom") in edges
        # Compression removed the internal nodes (z, the inner app...).
        assert summary.removed_nodes > 0

    def test_summary_of_simple_identity(self):
        src = "(fn[id] x => x) (fn[g] y => y)"
        prog = parse(src)
        sub = analyze_subtransitive(prog)
        summary = summarize_fragment(sub.sub, prog.abstraction("id"))
        edges = {
            (a.opkey[0], c.opkey[0]) for a, c in summary.edges
        }
        # The identity's range is its own domain.
        assert ("ran", "dom") in edges
