"""Fault-isolation and degradation tests for the batch runner.

These exercise the ProcessPoolExecutor path (jobs >= 2) with the
worker's test-only fault injection: a raising job, a dying worker, a
transiently-dying worker, and a stuck-slow job. The contract under
test: one bad job marks only itself, the batch always completes.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import BatchRunner, Job, canonical_options

GOOD = "let id = fn[id] x => x in id (fn[g] y => y)"
ALSO_GOOD = "(fn[f] x => x) (fn[g] y => y)"
#: Untypeable: the hybrid driver's LC' budget trips and it falls back.
OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"


def make_jobs(specs):
    """Jobs from (source, fault) pairs with sequential jids."""
    return [
        Job(
            jid=jid,
            source=source,
            path=f"job{jid}.lam",
            options=canonical_options(),
            fault=fault,
        )
        for jid, (source, fault) in enumerate(specs)
    ]


def statuses(batch):
    return [result.status for result in batch.results]


class TestSequentialFaults:
    def test_parse_error_marks_only_its_job(self):
        batch = BatchRunner(jobs=1).run_sources(
            [GOOD, "let let", ALSO_GOOD]
        )
        assert statuses(batch) == ["ok", "error", "ok"]
        assert "parse" in batch.results[1].error.lower() or (
            batch.results[1].error
        )
        assert batch.exit_code == 1

    def test_raise_fault_marks_only_its_job(self):
        runner = BatchRunner(jobs=1)
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (GOOD, {"raise": "injected"}),
                ]
            )
        )
        # Both jobs share a source; the faulty one must not poison
        # the cache for the healthy one (healthy ran first).
        assert statuses(batch) == ["ok", "error"]
        assert "injected" in batch.results[1].error


class TestPoolFaultIsolation:
    def test_raise_fault_is_isolated(self):
        runner = BatchRunner(jobs=2)
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (ALSO_GOOD, {"raise": "boom"}),
                    (OMEGA, None),
                ]
            )
        )
        assert statuses(batch) == ["ok", "error", "degraded"]
        assert "boom" in batch.results[1].error
        assert batch.results[2].fallback_reason == "budget"

    def test_worker_death_is_isolated_and_bounded(self):
        registry = MetricsRegistry()
        runner = BatchRunner(jobs=2, registry=registry)
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (ALSO_GOOD, {"die": True}),
                ]
            )
        )
        assert statuses(batch) == ["ok", "error"]
        assert "died" in batch.results[1].error
        assert batch.results[1].attempts == runner.max_attempts
        assert registry.counter("serve.pool.worker_deaths").value >= 1
        assert registry.counter("serve.pool.restarts").value >= 1

    def test_transient_death_retries_to_success(self, tmp_path):
        registry = MetricsRegistry()
        runner = BatchRunner(jobs=2, registry=registry)
        flag = str(tmp_path / "died-once")
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (ALSO_GOOD, {"die_once_flag": flag}),
                ]
            )
        )
        assert statuses(batch) == ["ok", "ok"]
        assert batch.results[1].attempts == 2
        assert registry.counter("serve.pool.retries").value >= 1
        assert batch.exit_code == 0

    def test_collateral_jobs_are_retried_not_failed(self):
        # Healthy jobs sharing a pool with a dying worker may see
        # BrokenProcessPool; they must come back ok, not error.
        runner = BatchRunner(jobs=2, max_attempts=2)
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (ALSO_GOOD, {"die": True}),
                    (OMEGA, None),
                    ("fn[f] x => x", None),
                ]
            )
        )
        assert statuses(batch) == ["ok", "error", "degraded", "ok"]


class TestTimeouts:
    def test_slow_job_degrades_to_standard(self, tmp_path):
        registry = MetricsRegistry()
        runner = BatchRunner(jobs=2, timeout=0.2, registry=registry)
        flag = str(tmp_path / "slept-once")
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    # Slow once: the first attempt trips the in-worker
                    # alarm, the standard-algorithm re-run is fast.
                    (ALSO_GOOD, {"sleep": 2.0, "sleep_once_flag": flag}),
                ]
            )
        )
        assert statuses(batch) == ["ok", "degraded"]
        degraded = batch.results[1]
        assert degraded.fallback_reason == "timeout"
        assert degraded.envelope["engine"]["fallback_reason"] == "timeout"
        assert (
            registry.counter("serve.pool.timeout_degraded").value == 1
        )
        assert batch.exit_code == 0

    def test_persistently_slow_job_times_out(self):
        runner = BatchRunner(jobs=2, timeout=0.2)
        batch = runner.run(
            make_jobs(
                [
                    (GOOD, None),
                    (ALSO_GOOD, {"sleep": 30.0}),
                ]
            )
        )
        assert statuses(batch) == ["ok", "timeout"]
        assert "wall-clock" in batch.results[1].error
        assert batch.exit_code == 1

    def test_degraded_timeout_result_is_cached_with_provenance(
        self, tmp_path
    ):
        runner = BatchRunner(jobs=2, timeout=0.2)
        flag = str(tmp_path / "slept-once")
        cold = runner.run(
            make_jobs([(GOOD, {"sleep": 2.0, "sleep_once_flag": flag})])
        ).results[0]
        assert cold.status == "degraded"
        warm = runner.run(make_jobs([(GOOD, None)])).results[0]
        # The warm hit re-derives "degraded" from the stored envelope
        # and its fingerprint matches the bytes actually cached.
        assert warm.cache == "memory"
        assert warm.status == "degraded"
        assert warm.fallback_reason == "timeout"
        assert warm.fingerprint == cold.fingerprint

    def test_sequential_timeout_uses_in_worker_alarm(self, tmp_path):
        flag = str(tmp_path / "slept-once")
        runner = BatchRunner(jobs=1, timeout=0.2)
        batch = runner.run(
            make_jobs([(GOOD, {"sleep": 2.0, "sleep_once_flag": flag})])
        )
        assert statuses(batch) == ["degraded"]
        assert batch.results[0].fallback_reason == "timeout"


class TestDegradation:
    def test_budget_fallback_is_degraded_not_error(self):
        batch = BatchRunner(jobs=1).run_sources([OMEGA])
        result = batch.results[0]
        assert result.status == "degraded"
        assert result.fallback_reason == "budget"
        assert result.envelope["engine"]["fallback_reason"] == "budget"
        assert batch.exit_code == 0

    def test_degraded_status_survives_the_cache(self):
        runner = BatchRunner(jobs=1)
        cold = runner.run_sources([OMEGA]).results[0]
        warm = runner.run_sources([OMEGA]).results[0]
        assert cold.cache == "miss" and warm.cache == "memory"
        assert warm.status == "degraded"
        assert warm.fallback_reason == "budget"
        assert warm.envelope == cold.envelope


class TestCounters:
    def test_job_status_counters(self):
        registry = MetricsRegistry()
        runner = BatchRunner(jobs=1, registry=registry)
        runner.run_sources([GOOD, OMEGA, "let let"])
        assert registry.counter("serve.jobs.total").value == 3
        assert registry.counter("serve.jobs.ok").value == 1
        assert registry.counter("serve.jobs.degraded").value == 1
        assert registry.counter("serve.jobs.error").value == 1

    def test_batch_timer_recorded(self):
        registry = MetricsRegistry()
        BatchRunner(jobs=1, registry=registry).run_sources([GOOD])
        assert registry.timer("serve.batch.seconds").count == 1


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            BatchRunner(jobs=0)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError, match="max_attempts"):
            BatchRunner(max_attempts=0)
