"""Structural invariants of the subtransitive graph and analysis.

These go beyond input/output agreement: they pin down properties of
the *construction* that the paper's complexity argument relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lc import build_subtransitive_graph
from repro.core.queries import analyze_subtransitive

from repro.lang import parse

from repro.lang.printer import pretty_program
from repro.workloads.generators import random_typed_program

seeds = st.integers(min_value=0, max_value=100_000)


class TestGraphInvariants:
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_demanded_iff_op_has_in_edge(self, seed):
        """An operator node is marked demanded exactly when it has an
        incoming edge (the LC' demand criterion)."""
        prog = random_typed_program(seed, fuel=18, use_datatypes=False)
        sub = build_subtransitive_graph(prog)
        for node in sub.factory.nodes:
            if node.kind != "op":
                continue
            has_in = sub.graph.in_degree(node) > 0
            assert node.demanded == has_in, node.describe()

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_every_graph_node_is_factory_made(self, seed):
        prog = random_typed_program(seed, fuel=18)
        sub = build_subtransitive_graph(prog)
        made = set(sub.factory.nodes)
        for graph_node in sub.graph.nodes():
            assert graph_node in made

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_build_rule_counts_match_program_shape(self, seed):
        prog = random_typed_program(seed, fuel=18)
        sub = build_subtransitive_graph(prog)
        rules = sub.stats.rule_applications
        assert rules["ABS-1"] == len(prog.abstractions)
        assert rules["ABS-2"] == len(prog.abstractions)
        assert rules["APP-1"] == len(prog.applications)
        assert rules["APP-2"] == len(prog.applications)

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_analysis_is_deterministic(self, seed):
        prog = random_typed_program(seed, fuel=16)
        first = build_subtransitive_graph(prog)
        second = build_subtransitive_graph(prog)
        assert first.stats.total_nodes == second.stats.total_nodes
        assert first.stats.total_edges == second.stats.total_edges


class TestLocality:
    """Adding unrelated code never changes existing answers — the
    property that makes the incremental session sound."""

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_dead_wrapper_preserves_labels(self, seed):
        prog = random_typed_program(seed, fuel=14, use_datatypes=False)
        base = analyze_subtransitive(prog)

        # Rebuild from pretty text (Program construction re-renames
        # and re-indexes, so the original must stay untouched).
        wrapped = parse(
            "let completely_unused_zz = fn qzz => qzz in "
            + pretty_program(prog)
        )
        extended = analyze_subtransitive(wrapped)

        # Walk the two trees in lockstep: wrapped.root.body mirrors
        # prog.root.
        originals = list(prog.root.walk())
        mirrored = list(wrapped.root.body.walk())
        assert len(originals) == len(mirrored)
        for left, right in zip(originals, mirrored):
            assert base.labels_of(left) == extended.labels_of(
                right
            ), left.nid


class TestRoundTripInvariance:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_pretty_parse_preserves_analysis(self, seed):
        prog = random_typed_program(seed, fuel=16)
        again = parse(pretty_program(prog))
        first = analyze_subtransitive(prog)
        second = analyze_subtransitive(again)
        assert prog.size == again.size
        for left, right in zip(prog.nodes, again.nodes):
            assert first.labels_of(left) == second.labels_of(right)


class TestLabelSanity:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_abstractions_always_contain_their_own_label(self, seed):
        prog = random_typed_program(seed, fuel=16)
        cfa = analyze_subtransitive(prog)
        for lam in prog.abstractions:
            assert lam.label in cfa.labels_of(lam)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_labels_are_subset_of_program_labels(self, seed):
        prog = random_typed_program(seed, fuel=16)
        cfa = analyze_subtransitive(prog)
        universe = set(prog.labels)
        for node in prog.nodes:
            assert cfa.labels_of(node) <= universe
