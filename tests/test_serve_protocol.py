"""Tests for the repro.batch/1 JSONL protocol and its validator."""

import json

import pytest

from repro.serve import (
    SCHEMA,
    BatchRunner,
    read_jsonl,
    to_jsonl,
    validate_batch_record,
)

GOOD = "let id = fn[id] x => x in id (fn[g] y => y)"
OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"


@pytest.fixture()
def batch():
    return BatchRunner(
        jobs=1, options={"lint": True, "sanitize": True}
    ).run_sources([("good.lam", GOOD), ("omega.lam", OMEGA)])


class TestRecordStream:
    def test_stream_shape(self, batch):
        records = batch.records()
        assert [r["record"] for r in records] == [
            "header",
            "job",
            "job",
            "summary",
        ]
        assert all(r["schema"] == SCHEMA for r in records)

    def test_header_carries_run_parameters(self, batch):
        header = batch.records()[0]
        assert header["workers"] == 1
        assert header["options"]["lint"] is True
        assert header["options"]["algorithm"] == "hybrid"

    def test_job_records_carry_provenance(self, batch):
        _, good, omega, _ = batch.records()
        assert good["path"] == "good.lam"
        assert good["status"] == "ok"
        assert good["cache"] == "miss"
        assert len(good["key"]) == 64
        assert len(good["fingerprint"]) == 64
        assert good["lint"]["findings"] == good["lint"]["findings"]
        assert good["sanitize"]["ok"] is True
        assert omega["status"] == "degraded"
        assert omega["fallback_reason"] == "budget"
        # The standard fallback has no subtransitive graph to check.
        assert omega["sanitize"] is None

    def test_summary_counts_and_hit_rate(self, batch):
        summary = batch.records()[-1]
        assert summary["jobs"] == 2
        assert summary["counts"] == {
            "ok": 1,
            "degraded": 1,
            "error": 0,
            "timeout": 0,
        }
        assert summary["cache"]["misses"] == 2
        assert summary["cache"]["hit_rate"] == 0.0
        assert summary["exit_code"] == 0
        assert "serve.jobs.total" in summary["registry"]["counters"]

    def test_envelopes_are_opt_in(self, batch):
        lean = batch.records()[1]
        full = batch.records(include_envelopes=True)[1]
        assert "envelope" not in lean
        assert full["envelope"]["schema"] == "repro.result/1"


class TestJsonl:
    def test_roundtrip(self, batch):
        text = to_jsonl(batch.records())
        records = read_jsonl(text)
        assert records == batch.records()

    def test_one_compact_record_per_line(self, batch):
        text = to_jsonl(batch.records())
        lines = text.splitlines()
        assert len(lines) == 4
        for line in lines:
            assert json.loads(line)["schema"] == SCHEMA
            assert "\n" not in line

    def test_blank_lines_ignored(self, batch):
        text = "\n\n" + to_jsonl(batch.records()) + "\n\n"
        assert len(read_jsonl(text)) == 4


class TestValidator:
    def fields(self, batch, kind):
        return next(
            r for r in batch.records() if r["record"] == kind
        )

    def test_accepts_every_real_record(self, batch):
        for record in batch.records():
            assert validate_batch_record(record) is record

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match=r"\$"):
            validate_batch_record([])

    def test_rejects_wrong_schema(self, batch):
        record = dict(self.fields(batch, "header"))
        record["schema"] = "repro.batch/0"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_batch_record(record)

    def test_rejects_unknown_kind(self, batch):
        record = dict(self.fields(batch, "header"))
        record["record"] = "trailer"
        with pytest.raises(ValueError, match=r"\$\.record"):
            validate_batch_record(record)

    def test_rejects_bad_status(self, batch):
        record = dict(self.fields(batch, "job"))
        record["status"] = "mostly-ok"
        with pytest.raises(ValueError, match=r"\$\.status"):
            validate_batch_record(record)

    def test_rejects_bad_cache_tier(self, batch):
        record = dict(self.fields(batch, "job"))
        record["cache"] = "l2"
        with pytest.raises(ValueError, match=r"\$\.cache"):
            validate_batch_record(record)

    def test_rejects_malformed_key(self, batch):
        record = dict(self.fields(batch, "job"))
        record["key"] = "abc123"
        with pytest.raises(ValueError, match=r"\$\.key"):
            validate_batch_record(record)

    def test_rejects_missing_summary_counts(self, batch):
        record = dict(self.fields(batch, "summary"))
        record["counts"] = {"ok": 1}
        with pytest.raises(ValueError, match=r"\$\.counts\."):
            validate_batch_record(record)

    def test_rejects_boolean_masquerading_as_int(self, batch):
        record = dict(self.fields(batch, "job"))
        record["attempts"] = True
        with pytest.raises(ValueError, match=r"\$\.attempts"):
            validate_batch_record(record)
