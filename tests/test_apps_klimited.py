"""Tests for linear-time k-limited CFA (paper Section 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.klimited import MANY, k_limited_cfa
from repro.core.lc import build_subtransitive_graph
from repro.core.queries import SubtransitiveCFA
from repro.lang import parse
from repro.workloads.generators import random_typed_program


class TestBasics:
    def test_single_callee(self):
        prog = parse("(fn[f] x => x) 1")
        klim = k_limited_cfa(prog, k=1)
        assert klim.may_call(prog.applications[0]) == {"f"}

    def test_k_must_be_positive(self):
        prog = parse("fn x => x")
        with pytest.raises(ValueError):
            k_limited_cfa(prog, k=0)

    def test_two_callees_within_k(self):
        src = (
            "let pick = if true then fn[a] x => x else fn[b] y => y in "
            "pick 1"
        )
        prog = parse(src)
        klim = k_limited_cfa(prog, k=2)
        assert klim.may_call(prog.applications[0]) == {"a", "b"}

    def test_two_callees_beyond_k(self):
        src = (
            "let pick = if true then fn[a] x => x else fn[b] y => y in "
            "pick 1"
        )
        prog = parse(src)
        klim = k_limited_cfa(prog, k=1)
        assert klim.may_call(prog.applications[0]) is MANY
        assert klim.is_many(prog.applications[0])

    def test_no_callees_is_empty_set(self):
        prog = parse("let dead = fn[d] x => x in 1 2".replace("1 2", "(fn[u] z => z) 0"))
        klim = k_limited_cfa(prog, k=1)
        assert klim.labels_of(prog.root.body.arg) == frozenset()

    def test_labels_of_var(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        klim = k_limited_cfa(prog, k=1)
        assert klim.labels_of_var("x") == {"g"}

    def test_reuses_prebuilt_graph(self):
        prog = parse("(fn[f] x => x) 1")
        sub = build_subtransitive_graph(prog)
        klim = k_limited_cfa(prog, k=1, sub=sub)
        assert klim.may_call(prog.applications[0]) == {"f"}
        assert klim.sub is sub


class TestMonomorphicSites:
    def test_monomorphic_site_detection(self):
        src = (
            "let id = fn[id] x => x in "
            "let pick = if true then fn[a] p => p else fn[b] q => q in "
            "(id 1, pick 2)"
        )
        prog = parse(src)
        klim = k_limited_cfa(prog, k=1)
        mono = klim.monomorphic_sites()
        id_site = prog.applications[0]
        pick_site = prog.applications[1]
        assert mono.get(id_site.nid) == "id"
        assert pick_site.nid not in mono


class TestAgreementWithExact:
    """k-limited agrees with exact L(e) whenever |L(e)| <= k, and
    reports MANY exactly when |L(e)| > k."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_generated_agreement(self, seed, k):
        prog = random_typed_program(seed, fuel=18)
        sub = build_subtransitive_graph(prog)
        exact = SubtransitiveCFA(sub)
        klim = k_limited_cfa(prog, k=k, sub=sub)
        for site in prog.applications:
            full = exact.may_call(site)
            limited = klim.may_call(site)
            if len(full) <= k:
                assert limited == full, (seed, site.nid)
            else:
                assert limited is MANY, (seed, site.nid)

    def test_increasing_k_refines(self):
        src = (
            "let pick = if true then fn[a] x => x else "
            "(if false then fn[b] y => y else fn[c] z => z) in pick 1"
        )
        prog = parse(src)
        site = prog.applications[0]
        assert k_limited_cfa(prog, k=1).may_call(site) is MANY
        assert k_limited_cfa(prog, k=2).may_call(site) is MANY
        assert k_limited_cfa(prog, k=3).may_call(site) == {"a", "b", "c"}

    def test_linear_time_counter(self):
        prog = parse("(fn[f] x => x) 1")
        klim = k_limited_cfa(prog, k=1)
        assert klim.seconds >= 0
