"""Unit tests for the mini-ML parser."""

import pytest

from repro.errors import ParseError
from repro.lang import parse, parse_expr
from repro.lang.ast import (
    App,
    Assign,
    Case,
    Con,
    Deref,
    If,
    Lam,
    Let,
    Letrec,
    Lit,
    Prim,
    Proj,
    Record,
    Ref,
    Var,
)
from repro.types.types import INT, TData, TFun, TRecord, TRef


class TestAtoms:
    def test_variable(self):
        assert isinstance(parse_expr("x"), Var)

    def test_integer_literal(self):
        expr = parse_expr("42")
        assert isinstance(expr, Lit) and expr.value == 42

    def test_booleans(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_unit(self):
        assert parse_expr("()").value is None

    def test_parenthesised_expression(self):
        expr = parse_expr("(x)")
        assert isinstance(expr, Var)

    def test_record_of_two(self):
        expr = parse_expr("(x, y)")
        assert isinstance(expr, Record) and expr.arity == 2

    def test_record_of_three(self):
        assert parse_expr("(1, 2, 3)").arity == 3


class TestLambdaAndApplication:
    def test_fn(self):
        expr = parse_expr("fn x => x")
        assert isinstance(expr, Lam) and expr.param == "x"
        assert expr.label is None

    def test_fn_with_label(self):
        expr = parse_expr("fn[mylab] x => x")
        assert expr.label == "mylab"

    def test_fn_body_extends_right(self):
        expr = parse_expr("fn x => x x")
        assert isinstance(expr.body, App)

    def test_application_left_associative(self):
        expr = parse_expr("f g h")
        assert isinstance(expr, App)
        assert isinstance(expr.fn, App)
        assert expr.fn.fn.name == "f"
        assert expr.arg.name == "h"

    def test_application_binds_tighter_than_plus(self):
        expr = parse_expr("f x + g y")
        assert isinstance(expr, Prim) and expr.name == "add"
        assert isinstance(expr.args[0], App)
        assert isinstance(expr.args[1], App)


class TestBindingForms:
    def test_let(self):
        expr = parse_expr("let x = 1 in x")
        assert isinstance(expr, Let)
        assert expr.name == "x"

    def test_let_nests(self):
        expr = parse_expr("let x = 1 in let y = 2 in x + y")
        assert isinstance(expr.body, Let)

    def test_letrec_requires_lambda(self):
        with pytest.raises(ParseError):
            parse_expr("letrec f = 1 in f")

    def test_letrec(self):
        expr = parse_expr("letrec f = fn x => f x in f")
        assert isinstance(expr, Letrec)
        assert isinstance(expr.bound, Lam)

    def test_if(self):
        expr = parse_expr("if true then 1 else 2")
        assert isinstance(expr, If)


class TestOperators:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.name == "add"
        assert expr.args[1].name == "mul"

    def test_add_left_associative(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.name == "sub"
        assert expr.args[0].name == "sub"

    def test_comparison(self):
        for src, prim in [("1 < 2", "less"), ("1 <= 2", "leq"),
                          ("1 == 2", "eq")]:
            expr = parse_expr(src)
            assert isinstance(expr, Prim) and expr.name == prim

    def test_prefix_not(self):
        expr = parse_expr("not true")
        assert isinstance(expr, Prim) and expr.name == "not"

    def test_print_is_prim(self):
        expr = parse_expr("print 3")
        assert isinstance(expr, Prim) and expr.name == "print"

    def test_print_argument_is_prefix_tight(self):
        # print f x parses as (print f) x
        expr = parse_expr("print f x")
        assert isinstance(expr, App)
        assert isinstance(expr.fn, Prim)


class TestRefsAndRecords:
    def test_ref(self):
        assert isinstance(parse_expr("ref 1"), Ref)

    def test_deref(self):
        assert isinstance(parse_expr("!c"), Deref)

    def test_assign_lowest_precedence(self):
        expr = parse_expr("c := 1 + 2")
        assert isinstance(expr, Assign)
        assert isinstance(expr.value, Prim)

    def test_assign_right_associative(self):
        expr = parse_expr("a := b := 1")
        assert isinstance(expr.value, Assign)

    def test_projection(self):
        expr = parse_expr("#2 p")
        assert isinstance(expr, Proj) and expr.index == 2

    def test_projection_of_application_needs_parens(self):
        expr = parse_expr("#1 (f x)")
        assert isinstance(expr, Proj)
        assert isinstance(expr.expr, App)


DTDECL = "datatype intlist = Nil | Cons of int * intlist;\n"


class TestDatatypes:
    def test_datatype_declaration(self):
        prog = parse(DTDECL + "Nil")
        decl = prog.datatypes["intlist"]
        assert decl.constructors["Nil"] == ()
        assert decl.constructors["Cons"] == (INT, TData("intlist"))

    def test_constructor_application(self):
        prog = parse(DTDECL + "Cons(1, Nil)")
        assert isinstance(prog.root, Con)
        assert prog.root.cname == "Cons"

    def test_case_expression(self):
        prog = parse(
            DTDECL
            + "case Cons(1, Nil) of Nil => 0 | Cons(h, t) => h end"
        )
        assert isinstance(prog.root, Case)
        assert len(prog.root.branches) == 2

    def test_case_leading_bar_allowed(self):
        prog = parse(
            DTDECL + "case Nil of | Nil => 0 | Cons(h, t) => h end"
        )
        assert len(prog.root.branches) == 2

    def test_nested_case(self):
        prog = parse(
            DTDECL
            + "case Nil of Nil => case Nil of Nil => 1 "
            + "| Cons(a, b) => 2 end | Cons(h, t) => 3 end"
        )
        assert len(prog.root.branches) == 2

    def test_datatype_with_function_type_argument(self):
        prog = parse(
            "datatype fnlist = FNil | FCons of (int -> int) * fnlist;\n"
            "FCons(fn x => x, FNil)"
        )
        decl = prog.datatypes["fnlist"]
        assert decl.constructors["FCons"][0] == TFun(INT, INT)

    def test_datatype_with_record_and_ref_types(self):
        prog = parse(
            "datatype box = Box of (int, int) * int ref;\nBox((1, 2), ref 3)"
        )
        cons = prog.datatypes["box"].constructors["Box"]
        assert cons[0] == TRecord((INT, INT))
        assert cons[1] == TRef(INT)


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(x")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expr("x )")

    def test_missing_in(self):
        with pytest.raises(ParseError):
            parse_expr("let x = 1 x")

    def test_case_without_end(self):
        with pytest.raises(ParseError):
            parse(DTDECL + "case Nil of Nil => 0")

    def test_duplicate_constructor_in_decl(self):
        with pytest.raises(ParseError):
            parse("datatype t = A | A;\nA")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_expr("")

    def test_error_has_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expr("let x = in x")
        assert excinfo.value.line == 1
