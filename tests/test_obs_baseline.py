"""The baseline regression gate: ``repro.obs-diff/1`` reports, their
thresholds and exit codes, and the ``repro obs diff`` CLI.

The two acceptance scenarios from the issue are the anchor tests:
identical documents must diff clean (exit 0, verdict ok), and a
document with ``phases.close.seconds`` doubled plus an inflated
``flow.steps.fused`` counter must exit nonzero *naming both regressed
metrics*.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.core.queries import analyze_subtransitive
from repro.obs import (
    collect_metrics,
    diff_documents,
    diff_exit_code,
    environment_provenance,
    render_diff,
    validate_metrics,
)
from repro.obs.baseline import (
    DIFF_SCHEMA,
    extract_metrics,
    validate_diff,
)
from repro.workloads.cubic import make_cubic_program


@pytest.fixture(scope="module")
def engine_doc():
    program = make_cubic_program(10)
    cfa = analyze_subtransitive(program)
    for site in program.nontrivial_applications():
        cfa.may_call(site)
    return validate_metrics(collect_metrics(cfa))


def bench_doc(engine, quick=True, environment=None):
    return {
        "schema": "repro.bench-metrics/1",
        "quick": quick,
        "experiments": {},
        "environment": (
            environment_provenance() if environment is None else environment
        ),
        "engine_metrics": engine,
    }


class TestExtraction:
    def test_engine_document_flattens(self, engine_doc):
        flat, meta = extract_metrics(engine_doc)
        assert meta["kind"] == "repro.metrics/1"
        assert "phases.close.seconds" in flat
        assert "rules.CLOSE-COV" in flat
        assert "graph.close_edges" in flat
        assert "timers.phase.build.total_seconds" in flat

    def test_bench_document_flattens_engine_section(self, engine_doc):
        flat, meta = extract_metrics(bench_doc(engine_doc))
        assert meta["kind"] == "repro.bench-metrics/1"
        assert meta["quick"] is True
        assert meta["environment"]["machine"]
        assert "phases.close.seconds" in flat

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            extract_metrics({"schema": "something/9"})


class TestDiffVerdicts:
    def test_identical_documents_all_ok(self, engine_doc):
        report = diff_documents(engine_doc, engine_doc)
        validate_diff(report)
        assert report["schema"] == DIFF_SCHEMA
        assert report["verdict"] == "ok"
        assert report["regressions"] == []
        assert report["warnings"] == []
        assert all(row["verdict"] == "ok" for row in report["metrics"])
        assert diff_exit_code(report) == 0

    def test_injected_regressions_named(self, engine_doc):
        # Acceptance scenario: 2x phase.close seconds + an inflated
        # fused-step counter -> nonzero exit naming both metrics.
        baseline = copy.deepcopy(engine_doc)
        baseline["registry"]["counters"]["flow.steps.fused"] = 100
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = (
            baseline["phases"]["close"]["seconds"] * 2 + 1.0
        )
        current["registry"]["counters"]["flow.steps.fused"] = 200
        report = diff_documents(baseline, current)
        validate_diff(report)
        assert report["verdict"] == "regression"
        assert "phases.close.seconds" in report["regressions"]
        assert "counters.flow.steps.fused" in report["regressions"]
        assert diff_exit_code(report) == 2
        assert diff_exit_code(report, warn_only=True) == 1

    def test_noise_floor_suppresses_tiny_seconds_ratios(self, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 0.0001
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 0.0009  # 9x but micro
        report = diff_documents(baseline, current)
        assert report["verdict"] == "ok"

    def test_warn_band_between_half_headroom_and_threshold(
        self, engine_doc
    ):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 1.0
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 1.3  # 1.25 <= r < 1.5
        report = diff_documents(baseline, current)
        assert report["verdict"] == "warn"
        assert "phases.close.seconds" in report["warned_metrics"]
        assert diff_exit_code(report) == 1

    def test_improvement_is_ok_and_flagged(self, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 2.0
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 1.0
        report = diff_documents(baseline, current)
        assert report["verdict"] == "ok"
        row = next(
            r
            for r in report["metrics"]
            if r["name"] == "phases.close.seconds"
        )
        assert row["improved"] is True

    def test_threshold_override(self, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 1.0
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 1.4
        report = diff_documents(
            baseline, current, thresholds={"phases.close.seconds": 1.2}
        )
        assert "phases.close.seconds" in report["regressions"]

    def test_zero_baseline_increase_is_regression(self, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["registry"]["counters"]["edges.dropped"] = 0
        current = copy.deepcopy(baseline)
        current["registry"]["counters"]["edges.dropped"] = 50
        report = diff_documents(baseline, current)
        row = next(
            r
            for r in report["metrics"]
            if r["name"] == "counters.edges.dropped"
        )
        assert row["ratio"] is None
        assert row["verdict"] == "regression"

    def test_missing_and_added_metrics_warn(self, engine_doc):
        current = copy.deepcopy(engine_doc)
        current["registry"]["counters"]["brand.new"] = 1
        baseline = copy.deepcopy(engine_doc)
        baseline["registry"]["counters"]["gone.now"] = 1
        report = diff_documents(baseline, current)
        assert report["verdict"] == "warn"
        assert any("brand.new" in w for w in report["warnings"])
        assert any("gone.now" in w for w in report["warnings"])


class TestCrossMachineDemotion:
    def test_cross_machine_seconds_regression_demoted(self, engine_doc):
        env_a = environment_provenance()
        env_b = dict(env_a, machine="arm64-other")
        baseline = bench_doc(copy.deepcopy(engine_doc), environment=env_a)
        baseline["engine_metrics"]["phases"]["close"]["seconds"] = 1.0
        current = bench_doc(copy.deepcopy(engine_doc), environment=env_b)
        current["engine_metrics"]["phases"]["close"]["seconds"] = 5.0
        report = diff_documents(baseline, current)
        assert report["verdict"] == "warn"
        assert "phases.close.seconds" in report["warned_metrics"]
        assert any("cross-machine" in w for w in report["warnings"])

    def test_cross_machine_count_regression_still_fails(self, engine_doc):
        env_a = environment_provenance()
        env_b = dict(env_a, machine="arm64-other")
        baseline = bench_doc(copy.deepcopy(engine_doc), environment=env_a)
        current = bench_doc(copy.deepcopy(engine_doc), environment=env_b)
        current["engine_metrics"]["graph"]["edges"] = (
            baseline["engine_metrics"]["graph"]["edges"] * 3 + 100
        )
        report = diff_documents(baseline, current)
        assert report["verdict"] == "regression"
        assert "graph.edges" in report["regressions"]

    def test_quick_mismatch_demotes_seconds(self, engine_doc):
        baseline = bench_doc(copy.deepcopy(engine_doc), quick=True)
        baseline["engine_metrics"]["phases"]["close"]["seconds"] = 1.0
        current = bench_doc(copy.deepcopy(engine_doc), quick=False)
        current["engine_metrics"]["phases"]["close"]["seconds"] = 5.0
        report = diff_documents(baseline, current)
        assert report["verdict"] == "warn"
        assert any("quick-mode mismatch" in w for w in report["warnings"])


class TestValidatorAndRender:
    def test_validator_rejects_bad_verdict(self, engine_doc):
        report = diff_documents(engine_doc, engine_doc)
        report["verdict"] = "fine"
        with pytest.raises(ValueError, match=r"\$\.verdict"):
            validate_diff(report)

    def test_validator_rejects_bad_row(self, engine_doc):
        report = diff_documents(engine_doc, engine_doc)
        report["metrics"][0]["baseline"] = "lots"
        with pytest.raises(ValueError, match=r"\$\.metrics\[0\]"):
            validate_diff(report)

    def test_report_is_json_safe(self, engine_doc):
        report = diff_documents(engine_doc, engine_doc)
        json.loads(json.dumps(report))

    def test_render_names_regressions(self, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 1.0
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 9.0
        text = render_diff(diff_documents(baseline, current))
        assert "regression" in text
        assert "phases.close.seconds" in text


class TestObsDiffCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys, engine_doc):
        a = self._write(tmp_path, "a.json", engine_doc)
        assert main(["obs", "diff", a, a]) == 0
        assert "baseline diff: ok" in capsys.readouterr().out

    def test_regression_exits_two_and_names_metrics(
        self, tmp_path, capsys, engine_doc
    ):
        baseline = copy.deepcopy(engine_doc)
        baseline["registry"]["counters"]["flow.steps.fused"] = 100
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = (
            baseline["phases"]["close"]["seconds"] * 2 + 1.0
        )
        current["registry"]["counters"]["flow.steps.fused"] = 200
        a = self._write(tmp_path, "a.json", baseline)
        b = self._write(tmp_path, "b.json", current)
        assert main(["obs", "diff", a, b]) == 2
        out = capsys.readouterr().out
        assert "phases.close.seconds" in out
        assert "counters.flow.steps.fused" in out
        assert main(["obs", "diff", a, b, "--warn-only"]) == 1

    def test_json_output_validates(self, tmp_path, capsys, engine_doc):
        a = self._write(tmp_path, "a.json", engine_doc)
        assert main(["obs", "diff", a, a, "--json"]) == 0
        validate_diff(json.loads(capsys.readouterr().out))

    def test_threshold_override_flag(self, tmp_path, capsys, engine_doc):
        baseline = copy.deepcopy(engine_doc)
        baseline["phases"]["close"]["seconds"] = 1.0
        current = copy.deepcopy(baseline)
        current["phases"]["close"]["seconds"] = 1.2
        a = self._write(tmp_path, "a.json", baseline)
        b = self._write(tmp_path, "b.json", current)
        assert main(["obs", "diff", a, b]) == 0
        assert (
            main(
                [
                    "obs", "diff", a, b,
                    "--threshold", "phases.close.seconds=1.1",
                ]
            )
            == 2
        )

    def test_bad_threshold_spelling_is_user_error(
        self, tmp_path, capsys, engine_doc
    ):
        a = self._write(tmp_path, "a.json", engine_doc)
        assert main(["obs", "diff", a, a, "--threshold", "oops"]) == 1
        assert "NAME=VALUE" in capsys.readouterr().err


class TestCommittedBaseline:
    def test_committed_baseline_self_diffs_clean(self):
        with open("benchmarks/BASELINE.json") as handle:
            document = json.load(handle)
        assert document["schema"] == "repro.bench-metrics/1"
        assert document["quick"] is True
        assert isinstance(document["environment"], dict)
        validate_metrics(document["engine_metrics"])
        report = diff_documents(document, document)
        assert report["verdict"] == "ok"
