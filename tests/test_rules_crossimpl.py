"""Property-based cross-implementation equivalence for the rule ports.

Hypothesis drives seeded random well-typed programs (the same
generator family the backend-equivalence suite uses) through every
ported analysis twice — hand-written traversal vs. compiled rule
program — on both graph backends, and requires byte-identical
results: the full serialised lint envelope for L001-L005/F001-F004,
the red set for effects, the per-site label sets for k-limited CFA,
and the classification tables for called-once.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.apps.called_once import called_once
from repro.apps.effects import effects_analysis
from repro.apps.klimited import k_limited_cfa
from repro.core.lc import build_subtransitive_graph
from repro.lint import run_lints
from repro.rules.programs import (
    rules_called_once,
    rules_effects_analysis,
    rules_k_limited_cfa,
)
from repro.workloads.generators import random_typed_program

BACKENDS = ("object", "csr")

seeds = st.integers(min_value=0, max_value=10_000)
backends = st.sampled_from(BACKENDS)


def normalised(result):
    document = result.to_dict()
    document.pop("pass_seconds", None)
    document.pop("impl", None)
    return json.dumps(document, sort_keys=True)


@settings(max_examples=60, deadline=None)
@given(seed=seeds, backend=backends)
def test_lint_twins_agree_on_random_programs(seed, backend):
    program = random_typed_program(seed, fuel=20)
    sub = build_subtransitive_graph(program, graph_backend=backend)
    hand = run_lints(program, sub, impl="hand")
    rules = run_lints(program, sub, impl="rules")
    assert normalised(hand) == normalised(rules)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, backend=backends)
def test_effects_twins_agree_on_random_programs(seed, backend):
    program = random_typed_program(seed, fuel=20)
    sub = build_subtransitive_graph(program, graph_backend=backend)
    hand = effects_analysis(program, sub=sub)
    rules = rules_effects_analysis(program, sub=sub)
    assert hand.red_nids == rules.red_nids
    for site in program.applications:
        assert hand.is_effectful(site) == rules.is_effectful(site)


@settings(max_examples=40, deadline=None)
@given(
    seed=seeds,
    backend=backends,
    k=st.integers(min_value=1, max_value=3),
)
def test_klimited_twins_agree_on_random_programs(seed, backend, k):
    program = random_typed_program(seed, fuel=18)
    sub = build_subtransitive_graph(program, graph_backend=backend)
    hand = k_limited_cfa(program, k=k, sub=sub)
    rules = rules_k_limited_cfa(program, k=k, sub=sub)
    for site in program.applications:
        assert hand.may_call(site) == rules.may_call(site), site.nid
    for expr in program.nodes:
        assert hand.labels_of(expr) == rules.labels_of(expr), expr.nid


@settings(max_examples=40, deadline=None)
@given(seed=seeds, backend=backends)
def test_called_once_twins_agree_on_random_programs(seed, backend):
    program = random_typed_program(seed, fuel=20)
    sub = build_subtransitive_graph(program, graph_backend=backend)
    hand = called_once(program, sub=sub)
    rules = rules_called_once(program, sub=sub)
    assert hand.once_labels == rules.once_labels
    assert hand.never_called == rules.never_called
    assert hand.many_callers == rules.many_callers
    for label in hand.once_labels:
        assert hand.unique_site(label) is rules.unique_site(label)
