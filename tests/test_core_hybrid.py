"""Tests for the hybrid driver (budgeted LC' + cubic fallback)."""

import pytest

from repro.cfa.standard import analyze_standard
from repro.core.hybrid import analyze_hybrid
from repro.lang import parse
from repro.workloads.generators import random_typed_program

from tests.helpers import assert_same_label_sets


class TestEngineSelection:
    def test_typed_program_uses_subtransitive(self):
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        hybrid = analyze_hybrid(prog)
        assert hybrid.engine == "subtransitive"

    def test_untypeable_self_application_falls_back(self):
        # Omega-ish terms are untypeable; LC' would tower forever.
        prog = parse("(fn[w] x => x x) (fn[w2] y => y y)")
        hybrid = analyze_hybrid(prog)
        assert hybrid.engine == "standard"

    def test_fallback_result_is_correct(self):
        prog = parse("(fn[w] x => x x) (fn[w2] y => y y)")
        hybrid = analyze_hybrid(prog)
        assert hybrid.labels_of(prog.root.arg) == {"w2"}
        # Self-application: x receives w2, (x x) applies w2 to itself.
        assert hybrid.labels_of_var("x") == {"w2"}

    def test_y_combinator_terminates(self):
        # The call-by-value Y combinator: famously untypeable.
        src = (
            "fn[outer] f => "
            "(fn[a] x => f (fn[ea] v => x x v)) "
            "(fn[b] x2 => f (fn[eb] w => x2 x2 w))"
        )
        prog = parse(src)
        hybrid = analyze_hybrid(prog)
        assert hybrid.engine == "standard"
        assert hybrid.labels_of(prog.root) == {"outer"}


class TestAgreement:
    def test_hybrid_matches_standard_either_way(self):
        for src in [
            "(fn[f] x => x x) (fn[g] y => y)",
            "(fn[w] x => x x) (fn[w2] y => y y)",
        ]:
            prog = parse(src)
            assert_same_label_sets(
                prog, analyze_standard(prog), analyze_hybrid(prog), src
            )

    def test_generated_programs_stay_subtransitive(self):
        # Typed generated programs should essentially never fall back.
        fallbacks = 0
        for seed in range(20):
            prog = random_typed_program(seed, fuel=18)
            if analyze_hybrid(prog).engine != "subtransitive":
                fallbacks += 1
        assert fallbacks == 0


class TestInterface:
    def test_delegation(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        hybrid = analyze_hybrid(prog)
        assert hybrid.may_call(prog.applications[0]) == {"f"}
        assert hybrid.is_label_in("g", prog.root)

    def test_repr_mentions_engine(self):
        prog = parse("fn[f] x => x")
        assert "subtransitive" in repr(analyze_hybrid(prog))

    def test_custom_budget_forces_fallback(self):
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        hybrid = analyze_hybrid(prog, node_budget=5)
        assert hybrid.engine == "standard"


class TestFallbackObservability:
    OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"

    def test_fallback_reason_and_counters(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        prog = parse(self.OMEGA)
        hybrid = analyze_hybrid(prog, registry=registry)
        assert hybrid.engine == "standard"
        assert hybrid.fallback_reason == "budget"
        assert registry.counter("hybrid.fallbacks").value == 1
        assert registry.counter("hybrid.fallback.budget").value == 1
        # The abandoned attempt's registry rides on the result so
        # metrics documents can still report its budget burn.
        assert hybrid.registry is registry

    def test_no_reason_when_subtransitive_wins(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        hybrid = analyze_hybrid(prog, registry=registry)
        assert hybrid.fallback_reason is None
        assert registry.counter("hybrid.fallback.budget").value == 0

    def test_metrics_document_records_reason(self):
        from repro.obs import MetricsRegistry, collect_metrics
        from repro.obs import validate_metrics

        registry = MetricsRegistry()
        prog = parse(self.OMEGA)
        hybrid = analyze_hybrid(prog, registry=registry)
        document = validate_metrics(collect_metrics(hybrid))
        assert document["engine"]["fallback"] is True
        assert document["engine"]["fallback_reason"] == "budget"
        counters = document["registry"]["counters"]
        assert counters["hybrid.fallback.budget"] == 1

    def test_metrics_reason_null_without_fallback(self):
        from repro.obs import collect_metrics, validate_metrics

        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        document = validate_metrics(
            collect_metrics(analyze_hybrid(prog))
        )
        assert document["engine"]["fallback"] is False
        assert document["engine"]["fallback_reason"] is None
