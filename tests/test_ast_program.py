"""Tests for AST construction and the Program container."""

import pytest

from repro.errors import ScopeError, UnknownConstructorError
from repro.lang import builders as b
from repro.lang import parse
from repro.lang.ast import App, Lam, Letrec, Lit, Program, Var


class TestNodeBasics:
    def test_identity_equality(self):
        a, c = b.lit(1), b.lit(1)
        assert a != c and a == a

    def test_children_order_is_evaluation_order(self):
        app = b.app(b.var("f"), b.var("x"))
        names = [c.name for c in app.children()]
        assert names == ["f", "x"]

    def test_walk_is_preorder(self):
        expr = b.app(b.lam("x", b.var("x")), b.lit(1))
        kinds = [type(n).__name__ for n in expr.walk()]
        assert kinds == ["App", "Lam", "Var", "Lit"]

    def test_letrec_rejects_non_lambda(self):
        with pytest.raises(ScopeError):
            Letrec("f", b.lit(1), b.var("f"))  # type: ignore[arg-type]

    def test_projection_index_must_be_positive(self):
        with pytest.raises(ScopeError):
            b.proj(0, b.var("p"))

    def test_literal_rejects_strings(self):
        with pytest.raises(ScopeError):
            Lit("nope")

    def test_prim_arity_checked(self):
        with pytest.raises(ScopeError):
            b.prim("add", b.lit(1))

    def test_prim_unknown_name(self):
        with pytest.raises(ScopeError):
            b.prim("frobnicate", b.lit(1))


class TestProgramIndexing:
    def test_nids_are_dense_preorder(self):
        prog = parse("(fn x => x) 1")
        assert [n.nid for n in prog.nodes] == list(range(prog.size))

    def test_size_counts_all_nodes(self):
        prog = parse("fn x => x")
        assert prog.size == 2  # Lam + Var

    def test_label_table(self):
        prog = parse("fn[foo] x => x")
        assert prog.abstraction("foo") is prog.root

    def test_auto_labels_are_unique(self):
        prog = parse("(fn x => x) (fn y => y)")
        assert len(set(prog.labels)) == 2

    def test_auto_labels_avoid_user_labels(self):
        prog = parse("(fn[l0] x => x) (fn y => y)")
        assert len(set(prog.labels)) == 2
        assert "l0" in prog.labels

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ScopeError):
            parse("(fn[same] x => x) (fn[same] y => y)")

    def test_unknown_label_lookup(self):
        prog = parse("fn[a] x => x")
        with pytest.raises(ScopeError):
            prog.abstraction("zzz")

    def test_binder_lookup(self):
        prog = parse("let v = 1 in fn p => v")
        assert prog.binder("v").name == "v"
        lam = prog.binder("p")
        assert isinstance(lam, Lam)

    def test_applications_collected(self):
        prog = parse("(fn a => a) ((fn c => c) 1)")
        assert len(prog.applications) == 2

    def test_abstractions_in_program_order(self):
        prog = parse("(fn[one] x => x) (fn[two] y => y)")
        assert prog.labels == ["one", "two"]


class TestScopingAndConstructors:
    def test_open_term_rejected(self):
        with pytest.raises(ScopeError):
            b.program(b.var("ghost"))

    def test_unknown_constructor_rejected(self):
        with pytest.raises(UnknownConstructorError):
            b.program(b.con("Mystery"))

    def test_constructor_arity_checked(self):
        from repro.workloads.generators import intlist_decl

        with pytest.raises(ScopeError):
            b.program(b.con("Cons", b.lit(1)), [intlist_decl()])

    def test_case_pattern_arity_checked(self):
        from repro.workloads.generators import intlist_decl

        bad = b.case(b.con("Nil"), ("Cons", ("h",), b.lit(0)))
        with pytest.raises(ScopeError):
            b.program(bad, [intlist_decl()])

    def test_duplicate_datatype_rejected(self):
        from repro.workloads.generators import intlist_decl

        with pytest.raises(ScopeError):
            Program(b.con("Nil"), [intlist_decl(), intlist_decl()])

    def test_constructor_signature_lookup(self):
        from repro.workloads.generators import intlist_decl
        from repro.types.types import INT

        prog = b.program(b.con("Nil"), [intlist_decl()])
        assert prog.constructor_signature("Cons")[0] == INT
        with pytest.raises(UnknownConstructorError):
            prog.constructor_signature("Bogus")


class TestNontrivialApplications:
    def test_known_function_identifier_is_trivial(self):
        prog = parse("let f = fn x => x in f 1")
        assert prog.nontrivial_applications() == []

    def test_direct_lambda_is_trivial(self):
        prog = parse("(fn x => x) 1")
        assert prog.nontrivial_applications() == []

    def test_computed_operator_is_nontrivial(self):
        prog = parse(
            "let f = fn x => x in let g = fn y => y in (f g) 1"
        )
        sites = prog.nontrivial_applications()
        assert len(sites) == 1
        assert isinstance(sites[0].fn, App)

    def test_parameter_operator_is_nontrivial(self):
        prog = parse("let h = fn f => f 1 in h (fn x => x)")
        sites = prog.nontrivial_applications()
        assert len(sites) == 1
        assert isinstance(sites[0].fn, Var)
        assert sites[0].fn.name == "f"
