"""Tests for alpha-renaming and scope checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScopeError
from repro.lang import builders as b
from repro.lang import parse_expr
from repro.lang.ast import Lam, Let, Var
from repro.lang.compare import ast_equal
from repro.lang.rename import alpha_rename, bound_variables, check_scopes
from repro.workloads.generators import random_typed_program


def binder_names(expr):
    names = []
    for node in expr.walk():
        if isinstance(node, Lam):
            names.append(node.param)
        elif isinstance(node, Let):
            names.append(node.name)
    return names


class TestAlphaRename:
    def test_distinct_binders_after_rename(self):
        expr = parse_expr("(fn x => x) ((fn x => x) (fn x => x))")
        renamed = alpha_rename(expr)
        names = binder_names(renamed)
        assert len(names) == len(set(names))

    def test_first_occurrence_keeps_its_name(self):
        expr = parse_expr("fn x => fn x => x")
        renamed = alpha_rename(expr)
        assert renamed.param == "x"
        assert renamed.body.param == "x_1"

    def test_inner_shadowing_rebinds_occurrences(self):
        expr = parse_expr("fn x => fn x => x")
        renamed = alpha_rename(expr)
        assert renamed.body.body.name == renamed.body.param

    def test_outer_occurrence_unaffected_by_shadow(self):
        expr = parse_expr("fn x => (fn x => x) x")
        renamed = alpha_rename(expr)
        outer_param = renamed.param
        application = renamed.body
        assert application.arg.name == outer_param
        assert application.fn.body.name == application.fn.param

    def test_labels_preserved(self):
        expr = parse_expr("fn[keep] x => x")
        assert alpha_rename(expr).label == "keep"

    def test_structure_preserved_up_to_names(self):
        expr = parse_expr("let f = fn x => x in f (fn y => y)")
        renamed = alpha_rename(expr)
        # No shadowing here, so names are unchanged entirely.
        assert ast_equal(expr, renamed)

    def test_unbound_variable_rejected(self):
        with pytest.raises(ScopeError):
            alpha_rename(b.var("free"))

    def test_letrec_binder_visible_in_bound(self):
        expr = parse_expr("letrec f = fn x => f x in f")
        renamed = alpha_rename(expr)
        assert renamed.bound.body.fn.name == renamed.name

    def test_case_params_renamed_apart(self):
        from repro.lang.parser import parse

        prog_src = (
            "datatype intlist = Nil | Cons of int * intlist;\n"
            "case Nil of Cons(h, t) => case Nil of Cons(h, t) => h "
            "| Nil => 0 end | Nil => 1 end"
        )
        prog = parse(prog_src)  # parse() alpha-renames internally
        names = []
        from repro.lang.ast import Case

        for node in prog.root.walk():
            if isinstance(node, Case):
                for branch in node.branches:
                    names.extend(branch.params)
        assert len(names) == len(set(names))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rename_idempotent_on_generated(self, seed):
        prog = random_typed_program(seed, fuel=15)
        once = alpha_rename(prog.root)
        twice = alpha_rename(once)
        assert ast_equal(once, twice)


class TestCheckScopes:
    def test_accepts_closed_terms(self):
        check_scopes(parse_expr("fn x => x x"))

    def test_rejects_free_variable(self):
        with pytest.raises(ScopeError):
            check_scopes(parse_expr("fn x => y"))

    def test_let_bound_not_visible_in_its_own_bound(self):
        with pytest.raises(ScopeError):
            check_scopes(b.let("x", b.var("x"), b.lit(1)))

    def test_letrec_bound_visible_in_its_own_bound(self):
        check_scopes(parse_expr("letrec f = fn x => f x in f"))

    def test_case_binds_pattern_variables(self):
        expr = b.case(
            b.con("Nil"), ("Cons", ("h", "t"), b.var("h"))
        )
        check_scopes(expr)

    def test_case_pattern_variables_not_visible_in_scrutinee(self):
        expr = b.case(b.var("h"), ("Cons", ("h", "t"), b.var("h")))
        with pytest.raises(ScopeError):
            check_scopes(expr)


class TestBoundVariables:
    def test_collects_all_binder_kinds(self):
        expr = b.let(
            "a",
            b.lam("p", b.var("p")),
            b.case(b.con("Nil"), ("Cons", ("h", "t"), b.var("h"))),
        )
        assert bound_variables(expr) == {"a", "p", "h", "t"}
