"""Offline trace analytics: stream parsing, completeness, hotspots,
the demand waterfall, and the CLOSE-* provenance cross-check.

The provenance invariant under test is the accounting contract from
the close-rule fix: closure counters count only edges actually added,
so a *complete* trace must satisfy ``#edge events(phase=close) ==
rules[CLOSE-COV] + rules[CLOSE-CONTRA] == graph.close_edges``.
"""

import json

import pytest

from repro.cli import main
from repro.core.queries import analyze_subtransitive
from repro.lang import parse
from repro.obs import (
    Tracer,
    collect_metrics,
    demand_waterfall,
    node_hotspots,
    provenance_check,
    read_events,
    rule_hotspots,
    validate_metrics,
)
from repro.obs.tracetools import (
    completeness,
    is_event_stream,
    render_top,
    render_waterfall,
)
from repro.workloads.cubic import make_cubic_program

SOURCE = (
    "let twice = fn[twice] f => fn[inner] x => f (f x) in "
    "twice (fn[inc] y => y + 1) 3"
)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    program = make_cubic_program(8)
    tracer = Tracer(capacity=16, sink=str(path))  # tiny ring on purpose
    cfa = analyze_subtransitive(program, tracer=tracer)
    tracer.close()
    metrics = validate_metrics(collect_metrics(cfa))
    return str(path), metrics, tracer


class TestReadEvents:
    def test_reads_sink_file(self, traced_run):
        path, _, tracer = traced_run
        events = read_events(path)
        # The sink got every event, ring rotation notwithstanding.
        assert len(events) == tracer.event_count
        assert len(events) > tracer.capacity

    def test_accepts_parsed_dicts_and_lines(self):
        events = [{"seq": 0, "kind": "demand", "node": "x"}]
        assert read_events(events) == events
        assert read_events([json.dumps(events[0])]) == events

    def test_rejects_bad_json(self):
        with pytest.raises(ValueError, match="line 1"):
            read_events(["{nope"])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            read_events([{"seq": 0, "kind": "mystery"}])

    def test_rejects_missing_seq(self):
        with pytest.raises(ValueError, match="seq"):
            read_events([{"kind": "demand"}])


class TestCompleteness:
    def test_sink_stream_is_complete(self, traced_run):
        path, _, _ = traced_run
        report = completeness(read_events(path))
        assert report["complete"] is True
        assert report["first_seq"] == 0
        assert report["gaps"] == 0

    def test_buffer_dump_after_rotation_is_incomplete(self, traced_run):
        _, _, tracer = traced_run
        assert tracer.dropped > 0
        report = completeness(tracer.events())
        assert report["complete"] is False
        assert report["first_seq"] > 0

    def test_gap_detected(self):
        events = [
            {"seq": 0, "kind": "demand"},
            {"seq": 2, "kind": "demand"},
        ]
        report = completeness(events)
        assert report["gaps"] == 1
        assert report["complete"] is False


class TestHotspots:
    def test_rule_hotspots_include_closures(self, traced_run):
        path, metrics, _ = traced_run
        counts = rule_hotspots(read_events(path))
        rules = metrics["rules"]
        assert counts["ABS"] == rules["ABS-1"]
        assert counts["APP"] == rules["APP-1"]
        assert (
            counts["CLOSE-*"]
            == rules["CLOSE-COV"] + rules["CLOSE-CONTRA"]
        )

    def test_node_hotspots_sorted_and_limited(self, traced_run):
        path, _, _ = traced_run
        rows = node_hotspots(read_events(path), limit=5)
        assert len(rows) == 5
        totals = [row["total"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        for row in rows:
            assert row["total"] == (
                row["edges"] + row["demands"] + row["sweeps"]
            )


class TestWaterfall:
    def test_rows_follow_demand_order(self, traced_run):
        path, metrics, _ = traced_run
        events = read_events(path)
        rows = demand_waterfall(events)
        assert len(rows) == metrics["nodes"]["demanded"]
        seqs = [row["seq"] for row in rows]
        assert seqs == sorted(seqs)

    def test_attributed_close_edges_sum(self, traced_run):
        # Every closure conclusion lands after the first demand, so
        # the waterfall's close-edge attributions sum to the total.
        path, metrics, _ = traced_run
        rows = demand_waterfall(read_events(path))
        assert (
            sum(row["close_edges"] for row in rows)
            == metrics["graph"]["close_edges"]
        )


class TestProvenance:
    def test_complete_trace_checks_out(self, traced_run):
        path, metrics, _ = traced_run
        report = provenance_check(read_events(path), metrics)
        assert report["complete"] is True
        assert report["ok"] is True
        assert report["problems"] == []

    def test_tampered_trace_is_caught(self, traced_run):
        path, metrics, _ = traced_run
        events = [
            e
            for e in read_events(path)
            if not (e["kind"] == "edge" and e.get("phase") == "close")
        ]
        # Renumber so the stream still *looks* complete: only the
        # accounting cross-check can catch the missing conclusions.
        for seq, event in enumerate(events):
            event["seq"] = seq
        report = provenance_check(events, metrics)
        assert report["complete"] is True
        assert report["ok"] is False
        assert report["problems"]

    def test_incomplete_trace_degrades_to_informational(self, traced_run):
        _, metrics, tracer = traced_run
        report = provenance_check(tracer.events(), metrics)
        assert report["complete"] is False
        assert report["problems"] == []

    def test_renderers_return_text(self, traced_run):
        path, metrics, _ = traced_run
        events = read_events(path)
        top = render_top(events, metrics=metrics, limit=3)
        assert "rule hotspots" in top
        assert "provenance" in top
        assert "demand waterfall" in render_waterfall(events, limit=3)


class TestEventLogDialect:
    """The reader sniffs ``repro.events/1`` frames, so the same CLI
    (``obs top`` / ``obs waterfall``) covers both JSONL dialects."""

    @pytest.fixture()
    def event_log(self, tmp_path):
        from repro.obs import EventLog

        path = str(tmp_path / "events.jsonl")
        log = EventLog(sink_path=path)
        rid = "req-0001"
        log.emit(
            "request", request_id=rid, component="server",
            verb="define", project="demo",
        )
        log.emit(
            "delta", request_id=rid, component="delta",
            op="define", name="f", retracted_edges=0,
        )
        log.emit(
            "flow", request_id=rid, component="flow",
            steps=12, fused=True,
        )
        log.emit(
            "response", request_id=rid, component="server",
            verb="define", status="ok", seconds=0.004,
        )
        log.flush()
        log.close()
        return path, log.events()

    def test_read_events_sniffs_event_frames(self, event_log):
        path, emitted = event_log
        events = read_events(path)
        assert events == emitted
        assert is_event_stream(events)
        # Engine traces are not mistaken for event logs.
        assert not is_event_stream(
            [{"seq": 0, "kind": "demand", "node": "x"}]
        )

    def test_read_events_rejects_malformed_event_frame(self, event_log):
        path, _ = event_log
        bad = dict(read_events(path)[0])
        bad["seq"] = "zero"
        with pytest.raises(ValueError, match="line 1"):
            read_events([bad])

    def test_render_top_dispatches_to_request_report(self, event_log):
        path, _ = event_log
        top = render_top(read_events(path), limit=5)
        assert "event mix" in top
        assert "request latency" in top
        # And never the engine-trace report.
        assert "rule hotspots" not in top

    def test_render_waterfall_dispatches_to_request_rows(self, event_log):
        path, _ = event_log
        out = render_waterfall(read_events(path), limit=5)
        assert "request waterfall" in out
        assert "req-0001" in out
        assert "demand waterfall" not in out

    def test_event_cli_paths(self, event_log, capsys):
        path, _ = event_log
        assert main(["obs", "top", path]) == 0
        assert "request latency" in capsys.readouterr().out
        assert main(["obs", "waterfall", path]) == 0
        assert "request waterfall" in capsys.readouterr().out
        assert main(["obs", "tail", path, "--grep", "delta"]) == 0
        tail = capsys.readouterr().out
        assert '"kind": "delta"' in tail or '"kind":"delta"' in tail
        assert main(["obs", "req", "req-0001", "--events", path]) == 0
        assert "req-0001" in capsys.readouterr().out


class TestObsTraceCli:
    def _traced_files(self, tmp_path):
        source = tmp_path / "prog.ml"
        source.write_text(SOURCE)
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "analyze", str(source),
                    "--trace", str(trace),
                    "--metrics", str(metrics),
                ]
            )
            == 0
        )
        return str(trace), str(metrics)

    def test_top_cross_checks_metrics(self, tmp_path, capsys):
        trace, metrics = self._traced_files(tmp_path)
        capsys.readouterr()
        assert main(["obs", "top", trace, "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "close-edge provenance vs metrics: ok" in out

    def test_top_exits_one_on_mismatch(self, tmp_path, capsys):
        trace, metrics = self._traced_files(tmp_path)
        with open(metrics) as handle:
            document = json.load(handle)
        document["rules"]["CLOSE-COV"] += 7
        with open(metrics, "w") as handle:
            json.dump(document, handle)
        assert main(["obs", "top", trace, "--metrics", metrics]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_waterfall(self, tmp_path, capsys):
        trace, _ = self._traced_files(tmp_path)
        capsys.readouterr()
        assert main(["obs", "waterfall", trace, "--limit", "3"]) == 0
        assert "demand waterfall" in capsys.readouterr().out
