"""Property-based equivalence: warm daemon state vs. cold analysis.

Hypothesis drives random define/redefine/undefine sequences against a
:class:`~repro.daemon.delta.ProjectAnalysis` and checks, after every
mutation, that the warm ``repro.result/1`` envelope is byte-identical
to a cold analysis of the rendered source — on both graph backends.
Fallbacks count as passes only because the fallback path *is* the
cold path (replay); the test asserts any fallback carries a known
reason. Lint output — finding positions included, now that the warm
chain restamps cold-parse line numbers after every mutation — is
compared byte-identical against the true cold run at the end of
every sequence.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.daemon import FALLBACK_REASONS, ProjectAnalysis
from repro.errors import ScopeError
from repro.export import result_to_dict
from repro.lang.parser import parse
from repro.serve.worker import _lint_section

# Binder-free and single-binder bodies; {ref} is replaced with an
# existing name (or dropped when there is none yet).
TEMPLATES = (
    "fn x => x",
    "fn x => x x",
    "fn[t{i}] y => y",
    "fn f => fn g => fn x => f (g x)",
    "{ref}",
    "{ref} {ref}",
    "fn z => {ref} z",
    "{ref} (fn[a{i}] w => w)",
    "fn[r{i}] x => {ref} ({ref} x)",
)

ops = st.lists(
    st.tuples(
        st.sampled_from(["define", "redefine", "undefine"]),
        st.integers(min_value=0, max_value=len(TEMPLATES) - 1),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=8,
)


def build_source(template, names, pick, counter):
    if "{ref}" in template and not names:
        template = "fn x => x"
    source = template.replace("{i}", str(counter))
    while "{ref}" in source:
        source = source.replace(
            "{ref}", names[pick % len(names)], 1
        )
        pick += 1
    return source


def run_sequence(backend, sequence):
    pa = ProjectAnalysis(graph_backend=backend)
    names = []
    for counter, (op, tmpl_index, pick) in enumerate(sequence):
        if op == "define" or not names:
            name = f"d{counter}"
            source = build_source(
                TEMPLATES[tmpl_index], names, pick, counter
            )
            pa.define(name, source)
            names.append(name)
        elif op == "redefine":
            name = names[pick % len(names)]
            # Self-reference through {ref} may make the definition
            # recursive: a lambda body is a supported letrec flip, a
            # non-lambda body is a letrec violation the engine must
            # reject pre-mutation (state stays exact — checked below).
            source = build_source(
                TEMPLATES[tmpl_index], names, pick, counter
            )
            try:
                pa.define(name, source)
            except ScopeError:
                pass
        else:  # undefine
            name = names[pick % len(names)]
            try:
                pa.undefine(name)
            except ScopeError:
                pass  # still referenced — rejection is the contract
            else:
                names.remove(name)
        warm = json.dumps(pa.envelope(), sort_keys=True)
        cold = json.dumps(
            result_to_dict(
                ProjectAnalysis.cold_cfa(
                    pa.render_source(), graph_backend=backend
                )
            ),
            sort_keys=True,
        )
        assert warm == cold, (op, name, pa.render_source())
        report = pa.sanitize()
        assert report["ok"], report["violations"]
    for reason, count in pa.fallbacks.items():
        assert reason in FALLBACK_REASONS
        assert count >= 0
    rendered = pa.render_source()
    cold_lint = _lint_section(
        parse(rendered),
        ProjectAnalysis.cold_cfa(rendered, graph_backend=backend),
    )
    assert json.dumps(pa.lint(), sort_keys=True) == json.dumps(
        cold_lint, sort_keys=True
    )


@settings(max_examples=40, deadline=None)
@given(sequence=ops)
def test_random_sequences_object_backend(sequence):
    run_sequence("object", sequence)


@settings(max_examples=25, deadline=None)
@given(sequence=ops)
def test_random_sequences_csr_backend(sequence):
    run_sequence("csr", sequence)


@pytest.mark.parametrize("backend", ["object", "csr"])
def test_worst_case_sequence(backend):
    """A hand-picked sequence that exercises every delta path:
    append, letrec, redefine-with-cascade, fallback, undefine."""
    run_sequence(
        backend,
        [
            ("define", 0, 0),
            ("define", 4, 0),
            ("redefine", 1, 0),
            ("define", 8, 1),
            ("redefine", 3, 1),
            ("undefine", 0, 2),
            ("define", 7, 0),
        ],
    )
