"""Tests for type representations and unification."""

import pytest

from repro.errors import OccursCheckError, UnificationError
from repro.types.types import (
    BOOL,
    INT,
    TData,
    TFun,
    TRecord,
    TRef,
    TScheme,
    TVar,
    UNIT,
    free_type_vars,
    occurs_in,
    prune,
)
from repro.types.unify import unify


class TestTypeBasics:
    def test_base_type_equality(self):
        assert INT == INT
        assert INT != BOOL

    def test_function_type_structural_equality(self):
        assert TFun(INT, BOOL) == TFun(INT, BOOL)
        assert TFun(INT, BOOL) != TFun(BOOL, INT)

    def test_record_equality_respects_arity(self):
        assert TRecord((INT, INT)) != TRecord((INT, INT, INT))

    def test_data_types_by_name(self):
        assert TData("t") == TData("t")
        assert TData("t") != TData("u")

    def test_tvar_identity(self):
        assert TVar() != TVar()

    def test_str_rendering(self):
        ty = TFun(TFun(INT, INT), TRef(BOOL))
        assert str(ty) == "(int -> int) -> bool ref"

    def test_record_rendering(self):
        assert str(TRecord((INT, BOOL))) == "(int, bool)"

    def test_walk_covers_subterms(self):
        ty = TFun(INT, TRecord((BOOL, UNIT)))
        seen = list(ty.walk())
        assert INT in seen and BOOL in seen and UNIT in seen

    def test_scheme_rendering(self):
        v = TVar()
        scheme = TScheme((v,), TFun(v, v))
        assert str(scheme).startswith("forall")
        assert TScheme((), INT).is_mono


class TestPrune:
    def test_prune_follows_chain(self):
        a, c = TVar(), TVar()
        a.instance = c
        c.instance = INT
        assert prune(a) == INT

    def test_prune_compresses_path(self):
        a, c = TVar(), TVar()
        a.instance = c
        c.instance = INT
        prune(a)
        assert a.instance == INT


class TestUnify:
    def test_unify_var_with_type(self):
        v = TVar()
        unify(v, INT)
        assert prune(v) == INT

    def test_unify_two_vars(self):
        a, c = TVar(), TVar()
        unify(a, c)
        unify(a, BOOL)
        assert prune(c) == BOOL

    def test_unify_functions_recursively(self):
        a, c = TVar(), TVar()
        unify(TFun(a, BOOL), TFun(INT, c))
        assert prune(a) == INT
        assert prune(c) == BOOL

    def test_unify_records(self):
        a = TVar()
        unify(TRecord((a, INT)), TRecord((BOOL, INT)))
        assert prune(a) == BOOL

    def test_unify_refs(self):
        a = TVar()
        unify(TRef(a), TRef(INT))
        assert prune(a) == INT

    def test_base_clash(self):
        with pytest.raises(UnificationError):
            unify(INT, BOOL)

    def test_data_clash(self):
        with pytest.raises(UnificationError):
            unify(TData("a"), TData("c"))

    def test_shape_clash(self):
        with pytest.raises(UnificationError):
            unify(TFun(INT, INT), TRecord((INT, INT)))

    def test_record_arity_clash(self):
        with pytest.raises(UnificationError):
            unify(TRecord((INT,)), TRecord((INT, INT)))

    def test_occurs_check(self):
        v = TVar()
        with pytest.raises(OccursCheckError):
            unify(v, TFun(v, INT))

    def test_self_unification_is_noop(self):
        v = TVar()
        unify(v, v)
        assert v.instance is None

    def test_levels_lowered_on_bind(self):
        low = TVar(level=0)
        high = TVar(level=5)
        unify(low, TFun(high, INT))
        assert high.level == 0


class TestHelpers:
    def test_occurs_in(self):
        v = TVar()
        assert occurs_in(v, TFun(INT, v))
        assert not occurs_in(v, TFun(INT, INT))

    def test_free_type_vars_in_order(self):
        a, c = TVar(), TVar()
        ty = TFun(a, TFun(c, a))
        assert free_type_vars(ty) == [a, c]

    def test_free_type_vars_skips_bound(self):
        a = TVar()
        a.instance = INT
        assert free_type_vars(TFun(a, a)) == []
