"""Tests for the content-addressed result cache (repro.serve.cache)."""

import json
import os

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    BatchRunner,
    ResultCache,
    cache_key,
    canonical_options,
    engine_version,
    normalize_source,
)

SOURCE = "let id = fn[id] x => x in id (fn[g] y => y)"


def envelope_for(source=SOURCE, **options):
    """A real repro.result/1 envelope, via the sequential runner."""
    batch = BatchRunner(jobs=1, options=options).run_sources([source])
    assert batch.results[0].envelope is not None
    return batch.results[0].envelope


class TestNormalizeSource:
    def test_line_ending_and_whitespace_noise_folds(self):
        assert normalize_source("a\r\nb\r") == normalize_source(
            "a  \nb\n\n\n"
        )

    def test_meaningful_text_preserved(self):
        assert normalize_source("  fn[f] x => x") == "  fn[f] x => x\n"


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(SOURCE) == cache_key(SOURCE)

    def test_is_sha256_hex(self):
        key = cache_key(SOURCE)
        assert len(key) == 64
        int(key, 16)

    def test_editor_noise_shares_a_key(self):
        assert cache_key(SOURCE) == cache_key(
            SOURCE.replace("\n", "\r\n") + "  \n\n"
        )

    def test_source_changes_key(self):
        assert cache_key(SOURCE) != cache_key("fn[f] x => x")

    def test_options_change_key(self):
        base = cache_key(SOURCE)
        assert cache_key(SOURCE, {"algorithm": "standard"}) != base
        assert cache_key(SOURCE, {"lint": True}) != base
        assert cache_key(SOURCE, {"sanitize": True}) != base

    def test_default_options_are_explicit(self):
        # Passing the defaults spelled out must alias the bare key.
        assert cache_key(SOURCE, canonical_options()) == cache_key(
            SOURCE
        )

    def test_version_changes_key(self):
        assert cache_key(SOURCE, version="0.0.0-test") != cache_key(
            SOURCE, version=engine_version()
        )

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown analysis option"):
            cache_key(SOURCE, {"algorithmn": "hybrid"})

    def test_graph_backend_is_result_neutral(self):
        # Both backends produce identical envelopes, so requests that
        # differ only in backend must share one cache entry.
        assert cache_key(SOURCE, {"graph_backend": "csr"}) == cache_key(
            SOURCE, {"graph_backend": "object"}
        )

    def test_lint_key_folds_in_the_rule_fingerprint(self):
        # A lint envelope depends on the shipped rule programs; the
        # key must change when they do, and only for lint requests.
        from unittest import mock

        base_lint = cache_key(SOURCE, {"lint": True})
        base_plain = cache_key(SOURCE, {"lint": False})
        with mock.patch(
            "repro.rules.programs.shipped_fingerprint",
            return_value="f" * 64,
        ):
            assert cache_key(SOURCE, {"lint": True}) != base_lint
            assert cache_key(SOURCE, {"lint": False}) == base_plain


class TestMemoryTier:
    def test_hit_deep_equals_stored(self):
        cache = ResultCache(capacity=4)
        envelope = envelope_for()
        cache.put("k" * 64, envelope)
        hit = cache.get("k" * 64)
        assert hit is not None
        got, tier = hit
        assert tier == "memory"
        assert got == envelope

    def test_returned_copy_cannot_corrupt_cache(self):
        cache = ResultCache(capacity=4)
        cache.put("k" * 64, envelope_for())
        got, _ = cache.get("k" * 64)
        got["program"]["size"] = -1
        again, _ = cache.get("k" * 64)
        assert again["program"]["size"] != -1

    def test_miss_counted(self):
        registry = MetricsRegistry()
        cache = ResultCache(capacity=4, registry=registry)
        assert cache.get("absent" + "0" * 58) is None
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        envelope = envelope_for()
        cache.put("a" * 64, envelope)
        cache.put("b" * 64, envelope)
        cache.get("a" * 64)  # refresh a: b is now least-recent
        cache.put("c" * 64, envelope)
        assert "a" * 64 in cache
        assert "b" * 64 not in cache
        assert cache.stats()["evictions"] == 1


class TestDiskTier:
    def test_roundtrip_and_promotion(self, tmp_path):
        key = cache_key(SOURCE)
        envelope = envelope_for()
        writer = ResultCache(capacity=4, cache_dir=str(tmp_path))
        writer.put(key, envelope)
        # A fresh cache (cold memory) must hit via disk...
        reader = ResultCache(capacity=4, cache_dir=str(tmp_path))
        got, tier = reader.get(key)
        assert tier == "disk"
        assert got == envelope
        # ...and the hit promotes the entry into memory.
        _, tier = reader.get(key)
        assert tier == "memory"

    def test_corrupted_entry_is_a_miss_not_an_error(self, tmp_path):
        key = cache_key(SOURCE)
        writer = ResultCache(capacity=4, cache_dir=str(tmp_path))
        writer.put(key, envelope_for())
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.resu')  # truncated write
        reader = ResultCache(capacity=4, cache_dir=str(tmp_path))
        assert reader.get(key) is None
        assert reader.stats()["corrupt"] == 1
        assert reader.stats()["misses"] == 1
        # The damaged file is removed so the next store heals it.
        assert not os.path.exists(path)

    def test_foreign_json_is_a_miss(self, tmp_path):
        key = cache_key(SOURCE)
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": "something/else"}, handle)
        reader = ResultCache(capacity=4, cache_dir=str(tmp_path))
        assert reader.get(key) is None
        assert reader.stats()["corrupt"] == 1


class TestEndToEnd:
    def test_warm_hit_deep_equals_cold_miss(self):
        runner = BatchRunner(jobs=1)
        cold = runner.run_sources([SOURCE]).results[0]
        warm = runner.run_sources([SOURCE]).results[0]
        assert cold.cache == "miss"
        assert warm.cache == "memory"
        assert warm.envelope == cold.envelope
        assert warm.fingerprint == cold.fingerprint
        assert warm.status == cold.status == "ok"

    def test_failed_jobs_are_never_cached(self):
        runner = BatchRunner(jobs=1)
        bad = "let let"  # parse error
        first = runner.run_sources([bad]).results[0]
        second = runner.run_sources([bad]).results[0]
        assert first.status == "error"
        assert second.cache == "miss"  # re-analysed, not served stale
