"""The observability subsystem: metric primitives, tracing, the
``repro.metrics/1`` export schema, and the engine-accounting
invariants they surface.

The load-bearing regression here is the closure-rule accounting: the
``CLOSE-COV``/``CLOSE-CONTRA`` counters must count *edges actually
added*, so that in any batch run their sum equals
``stats.close_edges`` exactly. The pre-fix engine incremented them per
attempted insertion (duplicates and capped targets included), which
made per-rule breakdowns useless for Table 1-style accounting.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.hybrid import analyze_hybrid
from repro.core.queries import analyze_subtransitive
from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse
from repro.obs import (
    EVENT_KINDS,
    MetricsRegistry,
    NULL_TRACER,
    SCHEMA,
    Tracer,
    collect_metrics,
    metrics_to_json,
    validate_metrics,
)
from repro.session import AnalysisSession
from repro.workloads.cubic import make_cubic_program
from repro.workloads.generators import random_typed_program

SAMPLES = [
    "let id = fn[id] x => x in id (fn[g] y => y)",
    "(fn[f] x => x x) (fn[g] y => y)",
    "let twice = fn[twice] f => fn[inner] x => f (f x) in "
    "twice (fn[inc] y => y + 1) 3",
]


# ---------------------------------------------------------------------------
# metric primitives


class TestPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("rules.TEST")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        # get-or-create: same object on re-request.
        assert registry.counter("rules.TEST") is counter

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_timer(self):
        timer = MetricsRegistry().timer("phase.test")
        with timer:
            pass
        timer.observe(0.5)
        assert timer.count == 2
        assert timer.last_seconds == 0.5
        assert timer.total_seconds >= 0.5

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2, "b": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        # snapshot must be JSON-safe as-is.
        json.dumps(snap)


class TestTracer:
    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("rule", rule="ABS-1", n=i)
        assert tracer.event_count == 10
        assert tracer.dropped == 6
        buffered = tracer.events()
        assert len(buffered) == 4
        assert [e["n"] for e in buffered] == [6, 7, 8, 9]
        assert [e["seq"] for e in buffered] == [6, 7, 8, 9]

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.emit("phase", phase="build", action="start")
        tracer.emit("rule", rule="APP-1")
        assert len(tracer.events("rule")) == 1
        assert tracer.events("rule")[0]["rule"] == "APP-1"

    def test_jsonl_sink_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(sink=str(path)) as tracer:
            tracer.emit("phase", phase="build", action="start")
            tracer.rule("CLOSE-COV", "a", "b", "close")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["kind"] == "phase"
        assert second == {
            "seq": 1,
            "kind": "rule",
            "rule": "CLOSE-COV",
            "src": "a",
            "dst": "b",
            "phase": "close",
        }

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit("rule", rule="ABS-1")
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.event_count == 0


# ---------------------------------------------------------------------------
# engine integration


class TestEngineTracing:
    def test_engine_emits_known_kinds_in_order(self):
        tracer = Tracer()
        cfa = repro.analyze(parse(SAMPLES[0]), tracer=tracer)
        for site in cfa.program.applications:
            cfa.may_call(site)
        kinds = {e["kind"] for e in tracer.events()}
        assert kinds <= set(EVENT_KINDS)
        assert {"phase", "rule", "edge"} <= kinds
        phases = [
            (e["phase"], e["action"]) for e in tracer.events("phase")
        ]
        assert phases == [
            ("build", "start"),
            ("build", "end"),
            ("close", "start"),
            ("close", "end"),
        ]

    def test_untraced_run_by_default(self):
        from repro.core.lc import LCEngine

        engine = LCEngine(parse(SAMPLES[0]))
        assert engine.tracer is None
        engine.run()  # must not emit (or fail) without a tracer


class TestCloseRuleAccounting:
    """CLOSE-COV + CLOSE-CONTRA == close_edges, exactly."""

    @pytest.mark.parametrize("source", SAMPLES)
    def test_on_samples(self, source):
        sub = repro.build_subtransitive_graph(parse(source))
        rules = sub.stats.rule_applications
        assert (
            rules["CLOSE-COV"] + rules["CLOSE-CONTRA"]
            == sub.stats.close_edges
        )

    def test_on_cubic_family(self):
        sub = repro.build_subtransitive_graph(make_cubic_program(24))
        rules = sub.stats.rule_applications
        assert (
            rules["CLOSE-COV"] + rules["CLOSE-CONTRA"]
            == sub.stats.close_edges
        )
        assert sub.stats.close_edges == len(sub.close_edges)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000_000))
    def test_property_counters_vs_edge_counts(self, seed):
        prog = random_typed_program(seed, fuel=20)
        try:
            sub = repro.build_subtransitive_graph(prog)
        except AnalysisBudgetExceeded:
            return
        rules = sub.stats.rule_applications
        assert (
            rules["CLOSE-COV"] + rules["CLOSE-CONTRA"]
            == sub.stats.close_edges
        ), seed
        assert sub.stats.total_edges == sub.graph.edge_count, seed
        assert sub.stats.close_edges == len(sub.close_edges), seed


# ---------------------------------------------------------------------------
# metrics export schema


class TestMetricsDocument:
    def _analysed(self, source=None):
        program = parse(source or SAMPLES[0])
        cfa = analyze_subtransitive(program)
        for site in program.applications:
            cfa.may_call(site)
        return cfa

    def test_round_trip(self):
        document = collect_metrics(self._analysed())
        validate_metrics(document)
        decoded = json.loads(metrics_to_json(document))
        assert validate_metrics(decoded) == decoded
        assert decoded["schema"] == SCHEMA

    def test_sections_cover_acceptance_surface(self):
        document = collect_metrics(self._analysed())
        phases = document["phases"]
        assert {"build", "close", "total"} <= set(phases)
        for phase in ("build", "close"):
            assert {"nodes", "edges", "seconds"} <= set(phases[phase])
        rules = document["rules"]
        assert set(rules) == {
            "ABS-1", "ABS-2", "APP-1", "APP-2",
            "CLOSE-COV", "CLOSE-CONTRA",
        }
        assert {"created", "budget", "budget_used", "demanded"} <= set(
            document["nodes"]
        )
        assert document["queries"]["count"] >= 1
        assert document["queries"]["visited_nodes"] >= 1

    def test_counts_match_stats(self):
        cfa = self._analysed()
        document = collect_metrics(cfa)
        stats = cfa.stats
        assert document["phases"]["build"]["edges"] == stats.build_edges
        assert document["phases"]["close"]["edges"] == stats.close_edges
        assert document["graph"]["edges"] == stats.total_edges
        assert document["rules"] == dict(stats.rule_applications)
        assert document["queries"]["count"] == cfa.query_count

    def test_validator_rejects_missing_section(self):
        document = collect_metrics(self._analysed())
        del document["phases"]
        with pytest.raises(ValueError, match="phases"):
            validate_metrics(document)

    def test_validator_rejects_wrong_type(self):
        document = collect_metrics(self._analysed())
        document["rules"]["ABS-1"] = "three"
        with pytest.raises(ValueError, match="ABS-1"):
            validate_metrics(document)

    def test_hybrid_fallback_document(self):
        registry = MetricsRegistry()
        result = analyze_hybrid(
            parse("(fn[w] x => x x) (fn[w2] y => y y)"),
            registry=registry,
        )
        document = validate_metrics(collect_metrics(result))
        assert document["engine"]["driver"] == "hybrid"
        assert document["engine"]["fallback"] is True
        assert result.fallback_reason in ("budget", "inference")
        assert registry.counter("hybrid.fallbacks").value == 1

    def test_hybrid_subtransitive_document(self):
        result = analyze_hybrid(parse(SAMPLES[0]))
        document = validate_metrics(collect_metrics(result))
        assert document["engine"]["fallback"] is False
        assert document["rules"] is not None


class TestSessionMetrics:
    def test_session_document_validates(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        session.define("use", "id id")
        session.query("use")
        document = validate_metrics(session.metrics())
        section = document["session"]
        assert section["defines"] == 2
        assert section["queries"] == 1
        ops = [entry["op"] for entry in section["history"]]
        assert ops == ["define", "define", "query"]
        assert all(
            entry["nodes_added"] >= 0 for entry in section["history"]
        )

    def test_history_skips_failed_operations(self):
        from repro.errors import ScopeError

        session = AnalysisSession()
        session.define("a", "fn[dup] x => x")
        with pytest.raises(ScopeError):
            session.define("b", "fn[dup] y => y")
        assert [e["op"] for e in session.history] == ["define"]


# ---------------------------------------------------------------------------
# timer distribution fields (min/max/mean)


class TestTimerDistribution:
    def test_min_max_mean_track_observations(self):
        timer = MetricsRegistry().timer("t")
        for seconds in (0.4, 0.1, 0.7):
            timer.observe(seconds)
        assert timer.min_seconds == 0.1
        assert timer.max_seconds == 0.7
        assert timer.mean_seconds == pytest.approx(0.4)

    def test_zero_observations_report_zero(self):
        timer = MetricsRegistry().timer("t")
        assert timer.min_seconds == 0.0
        assert timer.max_seconds == 0.0
        assert timer.mean_seconds == 0.0

    def test_snapshot_carries_distribution_fields(self):
        registry = MetricsRegistry()
        registry.timer("t").observe(0.25)
        snap = registry.snapshot()["timers"]["t"]
        assert snap["min_seconds"] == 0.25
        assert snap["max_seconds"] == 0.25
        assert snap["mean_seconds"] == 0.25

    def test_validator_accepts_and_type_checks_new_fields(self):
        prog = parse(SAMPLES[0])
        cfa = analyze_subtransitive(prog)
        document = validate_metrics(collect_metrics(cfa))
        timers = document["registry"]["timers"]
        assert timers  # engine runs always time their phases
        name = next(iter(timers))
        # Same schema tag: the fields are additive, not a v2.
        assert document["schema"] == SCHEMA
        # Older documents without the fields stay valid...
        for key in ("min_seconds", "max_seconds", "mean_seconds"):
            legacy = json.loads(metrics_to_json(document))
            del legacy["registry"]["timers"][name][key]
            validate_metrics(legacy)
        # ...but present-and-wrongly-typed is rejected by path.
        broken = json.loads(metrics_to_json(document))
        broken["registry"]["timers"][name]["max_seconds"] = "slow"
        with pytest.raises(ValueError, match="max_seconds"):
            validate_metrics(broken)


# ---------------------------------------------------------------------------
# sink lifecycle under mid-run failure


class TestTracerSinkLifecycle:
    def test_sink_flushed_when_analysed_program_raises(self, tmp_path):
        # Regression: a path-opened sink must be flushed and closed
        # even when the analysis aborts mid-run (budget trip) — the
        # partial trace is exactly what the post-mortem needs.
        path = tmp_path / "trace.jsonl"
        with pytest.raises(AnalysisBudgetExceeded):
            with Tracer(sink=str(path)) as tracer:
                analyze_subtransitive(
                    make_cubic_program(8), node_budget=5, tracer=tracer
                )
        assert tracer._sink is None  # owned handle released
        lines = path.read_text().splitlines()
        assert lines  # the events up to the abort reached disk
        events = [json.loads(line) for line in lines]
        assert events[-1]["seq"] == len(events) - 1
        assert tracer.event_count == len(events)

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(sink=str(tmp_path / "t.jsonl"))
        tracer.emit("phase", phase="build", action="start")
        tracer.close()
        tracer.close()  # second close must be a no-op, not a crash


# ---------------------------------------------------------------------------
# ring-buffer properties


class TestRingBufferProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        kinds=st.lists(
            st.sampled_from(["rule", "edge", "demand"]), max_size=64
        ),
    )
    def test_event_count_includes_rotated_events(self, capacity, kinds):
        tracer = Tracer(capacity=capacity)
        for kind in kinds:
            tracer.emit(kind)
        assert tracer.event_count == len(kinds)
        assert len(tracer.events()) == min(len(kinds), capacity)
        assert tracer.dropped == max(0, len(kinds) - capacity)

    @settings(max_examples=80, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        kinds=st.lists(
            st.sampled_from(["rule", "edge", "demand"]), max_size=64
        ),
    )
    def test_kind_filter_preserves_seq_order(self, capacity, kinds):
        tracer = Tracer(capacity=capacity)
        for kind in kinds:
            tracer.emit(kind)
        seqs = [event["seq"] for event in tracer.events("rule")]
        assert seqs == sorted(seqs)
        # And it is exactly the buffered subsequence of that kind.
        expected = [
            seq
            for seq, kind in enumerate(kinds)
            if kind == "rule" and seq >= len(kinds) - capacity
        ]
        assert seqs == expected
