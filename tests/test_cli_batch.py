"""Tests for `repro batch` and the multi-file analyze/lint paths."""

import json

import pytest

from repro.cli import main
from repro.serve import read_jsonl

DEMO = "let id = fn[id] x => x in id (fn[g] y => y)"
OTHER = "(fn[f] x => x) (fn[g] y => y)"
OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"
NOISY = "let f = fn[noisy] x => print x in f 1"


@pytest.fixture()
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "a_demo.lam").write_text(DEMO)
    (directory / "b_other.lam").write_text(OTHER)
    (directory / "c_noisy.lam").write_text(NOISY)
    return str(directory)


class TestBatchCommand:
    def test_text_output_and_exit_zero(self, corpus, capsys):
        assert main(["batch", corpus, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "a_demo.lam" in out
        assert "3 job(s)" in out
        assert "3 ok" in out

    def test_jsonl_stream_validates(self, corpus, capsys):
        assert main(["batch", corpus, "--format", "jsonl"]) == 0
        records = read_jsonl(capsys.readouterr().out)
        kinds = [record["record"] for record in records]
        assert kinds == ["header", "job", "job", "job", "summary"]
        assert records[-1]["exit_code"] == 0

    def test_warm_cache_hits_with_equal_results(
        self, corpus, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "batch",
            corpus,
            "--jobs",
            "2",
            "--cache-dir",
            cache_dir,
            "--format",
            "jsonl",
            "--envelopes",
        ]
        assert main(argv) == 0
        cold = read_jsonl(capsys.readouterr().out)
        assert main(argv) == 0
        warm = read_jsonl(capsys.readouterr().out)
        cold_jobs = [r for r in cold if r["record"] == "job"]
        warm_jobs = [r for r in warm if r["record"] == "job"]
        # Acceptance: a second run over an unchanged corpus serves
        # >= 90% from cache with deep-equal envelopes.
        hits = [job for job in warm_jobs if job["cache"] != "miss"]
        assert len(hits) / len(warm_jobs) >= 0.9
        assert warm[-1]["cache"]["hit_rate"] >= 0.9
        for before, after in zip(cold_jobs, warm_jobs):
            assert after["envelope"] == before["envelope"]
            assert after["fingerprint"] == before["fingerprint"]

    def test_error_job_fails_batch(self, corpus, tmp_path, capsys):
        bad = tmp_path / "bad.lam"
        bad.write_text("let let")
        assert (
            main(["batch", corpus, str(bad), "--format", "jsonl"]) == 1
        )
        records = read_jsonl(capsys.readouterr().out)
        by_status = [
            r["status"] for r in records if r["record"] == "job"
        ]
        assert by_status.count("error") == 1
        assert by_status.count("ok") == 3

    def test_degraded_does_not_fail_batch(self, tmp_path, capsys):
        omega = tmp_path / "omega.lam"
        omega.write_text(OMEGA)
        assert main(["batch", str(omega), "--format", "jsonl"]) == 0
        records = read_jsonl(capsys.readouterr().out)
        (job,) = [r for r in records if r["record"] == "job"]
        assert job["status"] == "degraded"
        assert job["fallback_reason"] == "budget"

    def test_lint_and_sanitize_flags(self, corpus, capsys):
        assert main(["batch", corpus, "--lint", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "lint finding" in out

    def test_missing_path_is_an_error(self, capsys):
        assert main(["batch", "/nonexistent-dir"]) == 1
        assert "error" in capsys.readouterr().err

    def test_examples_acceptance(self, capsys):
        # The ISSUE.md acceptance criterion, as a regression test.
        assert main(["batch", "examples", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "error" not in out.split("cache:")[0]


class TestMultiFileAnalyze:
    def test_directory_input(self, corpus, capsys):
        assert main(["analyze", corpus]) == 0
        out = capsys.readouterr().out
        assert "a_demo.lam" in out
        assert "b_other.lam" in out
        assert "may call" in out

    def test_multiple_files_json(self, corpus, tmp_path, capsys):
        extra = tmp_path / "extra.lam"
        extra.write_text(OTHER)
        assert main(["analyze", corpus, str(extra), "--json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert len(documents) == 4
        assert all(d["status"] == "ok" for d in documents)
        assert documents[0]["result"]["program"]["size"] == 7

    def test_single_file_path_unchanged(self, tmp_path, capsys):
        # One file must keep the original single-file behaviour
        # (plain document output, not a one-element array).
        path = tmp_path / "demo.lam"
        path.write_text(DEMO)
        assert main(["analyze", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert isinstance(document, dict)
        assert document["program"]["size"] == 7

    def test_one_bad_file_fails_but_reports_all(
        self, corpus, tmp_path, capsys
    ):
        bad = tmp_path / "bad.lam"
        bad.write_text("let let")
        assert main(["analyze", corpus, str(bad)]) == 1
        out = capsys.readouterr().out
        assert "a_demo.lam" in out
        assert "bad.lam" in out

    def test_metrics_flag_rejected_for_batches(
        self, corpus, tmp_path, capsys
    ):
        metrics = str(tmp_path / "metrics.json")
        assert main(["analyze", corpus, "--metrics", metrics]) == 1
        assert "one input file" in capsys.readouterr().err


class TestMultiFileLint:
    def test_directory_input(self, corpus, capsys):
        # c_noisy.lam carries lint findings; exit 1 means findings,
        # and all three files must have been visited.
        code = main(["lint", corpus])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "c_noisy.lam" in out

    def test_empty_directory_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["lint", str(empty)]) == 2
