"""Tests for type-tree measures and the bounded-type classes P_k."""

import pytest

from repro.lang import parse
from repro.types.measure import (
    arity_of,
    bounded_type_report,
    is_bounded_type,
    order_of,
    type_size,
)
from repro.types.types import BOOL, INT, TData, TFun, TRecord, TRef, TVar
from repro.workloads.cubic import make_cubic_program
from repro.workloads.synthetic import make_life_like


class TestTypeSize:
    def test_base_type(self):
        assert type_size(INT) == 1

    def test_function_type(self):
        assert type_size(TFun(INT, INT)) == 3

    def test_nested_function(self):
        # (int -> int) -> int -> int : 7 nodes
        ty = TFun(TFun(INT, INT), TFun(INT, INT))
        assert type_size(ty) == 7

    def test_record(self):
        assert type_size(TRecord((INT, BOOL))) == 3

    def test_datatype_counts_as_leaf(self):
        assert type_size(TData("intlist")) == 1

    def test_ref(self):
        assert type_size(TRef(INT)) == 2

    def test_tvar_is_leaf(self):
        assert type_size(TVar()) == 1


class TestOrderAndArity:
    def test_base_order(self):
        assert order_of(INT) == 0

    def test_first_order_function(self):
        assert order_of(TFun(INT, INT)) == 1

    def test_second_order_function(self):
        assert order_of(TFun(TFun(INT, INT), INT)) == 2

    def test_order_ignores_currying(self):
        assert order_of(TFun(INT, TFun(INT, INT))) == 1

    def test_paper_map_example(self):
        # (Int -> Int) -> Int list -> Int list has arity 2, order 2.
        intlist = TData("intlist")
        ty = TFun(TFun(INT, INT), TFun(intlist, intlist))
        assert arity_of(ty) == 2
        assert order_of(ty) == 2

    def test_arity_of_base(self):
        assert arity_of(INT) == 0

    def test_order_looks_into_records_and_refs(self):
        assert order_of(TRecord((TFun(INT, INT), INT))) == 1
        assert order_of(TRef(TFun(TFun(INT, INT), INT))) == 2


class TestBoundedTypeReport:
    def test_simple_program(self):
        prog = parse("(fn x => x + 1) 2")
        report = bounded_type_report(prog)
        assert report.max_size == 3  # int -> int
        assert report.max_order == 1
        assert report.node_count == prog.size

    def test_within(self):
        prog = parse("fn x => x + 1")
        report = bounded_type_report(prog)
        assert report.within(3)
        assert not report.within(2)

    def test_is_bounded_type(self):
        prog = parse("1 + 2")
        assert is_bounded_type(prog, 1)

    def test_polymorphic_sizes_use_instantiations(self):
        # id instantiated at (int -> int) -> ... makes the max size
        # grow even though id's definition is tiny.
        prog = parse("let id = fn x => x in (id (fn y => y + 1)) 3")
        report = bounded_type_report(prog)
        assert report.max_size >= 5

    def test_cubic_family_is_uniformly_bounded(self):
        small = bounded_type_report(make_cubic_program(2))
        large = bounded_type_report(make_cubic_program(20))
        # The family is in P_k for a fixed k independent of n.
        assert small.max_size == large.max_size

    def test_paper_constant_claim_on_realistic_program(self):
        # "the constant is quite small, typically around 2 or 3."
        report = bounded_type_report(make_life_like())
        assert 1.5 <= report.avg_size <= 4.0

    def test_avg_no_larger_than_max(self):
        report = bounded_type_report(make_cubic_program(3))
        assert report.avg_size <= report.max_size
