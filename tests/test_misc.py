"""Tests for the small supporting modules (prims, _util)."""

import time

import pytest

from repro._util import Stopwatch, ensure_recursion_limit
from repro.lang.prims import (
    INFIX_TO_PRIM,
    PREFIX_PRIMS,
    PRIMITIVES,
    is_effectful,
)


class TestPrims:
    def test_print_is_the_effectful_prim(self):
        assert is_effectful("print")
        pure = [n for n in PRIMITIVES if not is_effectful(n)]
        assert "add" in pure and "not" in pure

    def test_infix_table_covers_all_infix_prims(self):
        infix_names = {
            spec.name for spec in PRIMITIVES.values() if spec.infix
        }
        assert set(INFIX_TO_PRIM.values()) == infix_names

    def test_prefix_prims_have_no_infix(self):
        for name in PREFIX_PRIMS:
            assert not PRIMITIVES[name].infix

    def test_arities(self):
        assert PRIMITIVES["add"].arity == 2
        assert PRIMITIVES["print"].arity == 1
        assert PRIMITIVES["not"].arity == 1

    def test_infix_spellings_unique(self):
        spellings = [
            spec.infix for spec in PRIMITIVES.values() if spec.infix
        ]
        assert len(spellings) == len(set(spellings))


class TestUtil:
    def test_stopwatch_measures(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.008

    def test_stopwatch_resets_per_use(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            time.sleep(0.005)
        assert watch.elapsed >= first

    def test_recursion_limit_only_raises(self):
        import sys

        before = sys.getrecursionlimit()
        ensure_recursion_limit(before - 1)
        assert sys.getrecursionlimit() == before
        ensure_recursion_limit(before + 10)
        assert sys.getrecursionlimit() == before + 10
        sys.setrecursionlimit(max(before, 100_000))
