"""Tests for the compiled rule engine (repro.rules.engine).

The harness is a :class:`DictFactSource` over small explicit graphs —
node identity is plain ints — so every assertion is independent of the
LC' front end; the graph-backed path is covered by the golden tests.
"""

import pytest

from repro.flow.framework import FlowContext
from repro.flow.lattice import MANY
from repro.obs import MetricsRegistry
from repro.rules import (
    CompiledRuleSet,
    DictFactSource,
    Rel,
    Rule,
    RuleCompileError,
    RuleProgram,
    compile_programs,
    make_vars,
    naive_fixpoint,
)
from repro.rules.dsl import NID, NODE

N, M, S = make_vars("N M S")

EDGE = Rel("edge", NODE, NODE, kind="edb")
MARK = Rel("mark", NODE, kind="edb")
SRC = Rel("src", NID, NODE, kind="edb")

SCHEMA = {"edge": EDGE, "mark": MARK, "src": SRC}

REACH = Rel("reach", NODE)
UNREACHED = Rel("unreached", NODE)
CALLS = Rel("calls", NODE, NID, k=1)


def reach_programs():
    return [
        RuleProgram(
            "reach",
            [
                Rule(REACH(N), [MARK(N)], name="seed"),
                Rule(REACH(N), [REACH(M), EDGE(M, N)], name="step"),
            ],
        ),
        RuleProgram(
            "unreached",
            [
                Rule(
                    UNREACHED(N),
                    [EDGE(N, M), ~REACH(N)],
                    name="complement",
                ),
            ],
        ),
    ]


def calls_programs():
    return [
        RuleProgram(
            "calls",
            [
                Rule(CALLS(N, S), [SRC(S, N)], name="calls-seed"),
                Rule(
                    CALLS(N, S),
                    [CALLS(M, S), EDGE(M, N)],
                    name="calls-step",
                ),
            ],
        )
    ]


def source(**facts):
    return DictFactSource(SCHEMA, facts)


class TestCompiledAgainstNaive:
    def test_reachability_with_complement(self):
        # 0 -> 1 -> 2, 3 -> 4 isolated from the marks.
        facts = source(
            edge=[(0, 1), (1, 2), (3, 4)],
            mark=[(0,)],
        )
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        evaluation = compiled.run(source=facts)
        assert sorted(evaluation.rows("reach")) == [(0,), (1,), (2,)]
        assert sorted(evaluation.rows("unreached")) == [(3,)]

        reference = naive_fixpoint(compiled.checked, facts)
        assert reference.data == evaluation.extents.data

    def test_bounded_counting_matches_naive(self):
        # Two sites' values flow into node 2: the k=1 lattice tops out.
        facts = source(
            edge=[(0, 2), (1, 2), (2, 3)],
            src=[(10, 0), (11, 1)],
        )
        compiled = CompiledRuleSet(calls_programs(), schema=SCHEMA)
        evaluation = compiled.run(source=facts)
        assert evaluation.annotation("calls", 0) == frozenset({10})
        assert evaluation.annotation("calls", 2) is MANY
        assert evaluation.annotation("calls", 3) is MANY
        assert evaluation.annotation("calls", 4) is None

        reference = naive_fixpoint(compiled.checked, facts)
        assert reference.data == evaluation.extents.data

    def test_cycles_terminate(self):
        facts = source(edge=[(0, 1), (1, 0), (1, 2)], mark=[(0,)])
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        evaluation = compiled.run(source=facts)
        assert sorted(evaluation.rows("reach")) == [(0,), (1,), (2,)]

    def test_empty_source(self):
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        evaluation = compiled.run(source=source())
        assert evaluation.rows("reach") == []
        assert evaluation.rows("unreached") == []


class TestEvaluationApi:
    def test_holds_rejects_bounded_relations(self):
        facts = source(src=[(10, 0)])
        evaluation = CompiledRuleSet(
            calls_programs(), schema=SCHEMA
        ).run(source=facts)
        with pytest.raises(TypeError):
            evaluation.holds("calls", 0, 10)

    def test_rows_are_deterministic(self):
        facts = source(edge=[(2, 1), (0, 1)], mark=[(0,), (2,)])
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        first = compiled.run(source=facts).rows("reach")
        second = compiled.run(source=facts).rows("reach")
        assert first == second


class TestMetrics:
    def test_counters_and_gauges_land_on_the_registry(self):
        registry = MetricsRegistry()
        facts = source(edge=[(0, 1)], mark=[(0,)])
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        compiled.run(source=facts, registry=registry)
        assert registry.counter("rules.facts").value > 0
        assert registry.gauge("rules.levels").value == 2
        assert registry.gauge("rules.relations").value == 2
        assert registry.timer("rules.eval").count == 1


class TestProvenance:
    def test_unexplained_run_has_no_derivations(self):
        facts = source(edge=[(0, 1)], mark=[(0,)])
        evaluation = CompiledRuleSet(
            reach_programs(), schema=SCHEMA
        ).run(source=facts)
        assert not evaluation.explained
        assert evaluation.derivation("reach", (1,)) == []

    def test_derivation_chain_ends_at_a_seed(self):
        facts = source(edge=[(0, 1), (1, 2)], mark=[(0,)])
        evaluation = CompiledRuleSet(
            reach_programs(), schema=SCHEMA
        ).run(source=facts, explain=True)
        chain = evaluation.derivation("reach", (2,))
        assert chain[0]["fact"] == "reach(2)"
        assert chain[0]["rule"] == "step"
        assert chain[-1]["rule"] == "seed"
        assert chain[-1]["premises"] == ["mark(0)"]
        # Every step is JSON-safe strings.
        for step in chain:
            assert isinstance(step["fact"], str)
            assert all(isinstance(p, str) for p in step["premises"])

    def test_negative_premises_are_recorded(self):
        facts = source(edge=[(3, 4)], mark=[(0,)])
        evaluation = CompiledRuleSet(
            reach_programs(), schema=SCHEMA
        ).run(source=facts, explain=True)
        (step,) = evaluation.derivation("unreached", (3,))
        assert step["rule"] == "complement"
        assert "!reach(3)" in step["premises"]

    def test_explain_does_not_change_results(self):
        facts = source(
            edge=[(0, 1), (1, 2), (2, 0), (1, 3)], mark=[(0,)]
        )
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        plain = compiled.run(source=facts)
        explained = compiled.run(source=facts, explain=True)
        assert plain.extents.data == explained.extents.data

    def test_derivation_limit_truncates(self):
        chain_edges = [(i, i + 1) for i in range(40)]
        facts = source(edge=chain_edges, mark=[(0,)])
        evaluation = CompiledRuleSet(
            reach_programs(), schema=SCHEMA
        ).run(source=facts, explain=True)
        chain = evaluation.derivation("reach", (40,), limit=5)
        assert len(chain) == 6
        assert chain[-1]["rule"] == "..."


class TestCompileErrors:
    def test_recursive_rule_outside_propagation_shape(self):
        loop = Rel("loop", NODE)
        programs = [
            RuleProgram(
                "bad-shape",
                [
                    Rule(loop(N), [MARK(N)], name="seed"),
                    # Same key variable on both sides: linear per the
                    # checker, but not an edge propagation.
                    Rule(loop(N), [loop(N), MARK(N)], name="self"),
                ],
            )
        ]
        with pytest.raises(RuleCompileError) as err:
            CompiledRuleSet(programs, schema=SCHEMA)
        assert "propagation shape" in str(err.value)

    def test_propagation_follows_any_binary_base_relation(self):
        # Recursion used to require the literal 'edge' relation; a
        # step rule may now follow any (node, node) base relation.
        link = Rel("link", NODE, NODE, kind="edb")
        walk = Rel("walk", NODE)
        programs = [
            RuleProgram(
                "via-link",
                [
                    Rule(walk(N), [MARK(N)], name="seed"),
                    Rule(walk(N), [walk(M), link(M, N)], name="step"),
                ],
            )
        ]
        schema = {"mark": MARK, "link": link}
        compiled = CompiledRuleSet(programs, schema=schema)
        facts = DictFactSource(
            schema, {"mark": [(0,)], "link": [(0, 1), (1, 2), (5, 6)]}
        )
        evaluation = compiled.run(source=facts)
        assert {row[0] for row in evaluation.rows("walk")} == {0, 1, 2}

    def test_step_rules_must_share_one_propagation_relation(self):
        # One sweep follows one relation: step rules of the same head
        # naming different base relations cannot fuse.
        link = Rel("link", NODE, NODE, kind="edb")
        rail = Rel("rail", NODE, NODE, kind="edb")
        walk = Rel("walk", NODE)
        programs = [
            RuleProgram(
                "mixed-via",
                [
                    Rule(walk(N), [MARK(N)], name="seed"),
                    Rule(walk(N), [walk(M), link(M, N)], name="s1"),
                    Rule(walk(N), [walk(M), rail(M, N)], name="s2"),
                ],
            )
        ]
        with pytest.raises(RuleCompileError) as err:
            CompiledRuleSet(
                programs,
                schema={"mark": MARK, "link": link, "rail": rail},
            )
        assert "different base relations" in str(err.value)

    def test_compile_programs_convenience(self):
        compiled = compile_programs(reach_programs(), schema=SCHEMA)
        assert isinstance(compiled, CompiledRuleSet)
        assert compiled.fingerprint


class TestFuel:
    def test_graphless_run_defaults_to_unlimited_fuel(self):
        facts = source(
            edge=[(i, i + 1) for i in range(200)], mark=[(0,)]
        )
        compiled = CompiledRuleSet(reach_programs(), schema=SCHEMA)
        evaluation = compiled.run(
            ctx=FlowContext(), source=facts
        )
        assert len(evaluation.rows("reach")) == 201
