"""The telemetry layer: histograms, the event log, and validators.

Property suites back the two structural claims the observability
design leans on (docs/OBSERVABILITY.md):

* **histograms** — fixed log2 boundaries make merge a bucket-wise
  addition (associative, order-independent), and snapshots round-trip
  exactly through the ``repro.metrics/1`` registry validator;
* **event ring** — overflow drops the *oldest* records and counts
  every drop exactly (``events_dropped`` in daemon status is this
  number).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    EventLog,
    Histogram,
    MetricsRegistry,
    bind_request,
    current_request,
    emit_event,
    new_request_id,
    read_event_log,
    validate_event,
    validate_registry_snapshot,
    validate_telemetry,
)
from repro.obs.metrics import bucket_bounds, bucket_key

#: Non-negative samples in the ranges the daemon observes: latencies
#: (fractional seconds), retraction counts, step totals.
samples = st.one_of(
    st.floats(
        min_value=0.0,
        max_value=1e9,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.integers(min_value=0, max_value=10**9),
)


def hist_of(values, name="h"):
    hist = Histogram(name)
    for value in values:
        hist.observe(value)
    return hist


# -- bucket boundaries ---------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(value=samples)
def test_bucket_key_matches_bounds(value):
    """Every sample lands in the bucket whose interval contains it —
    boundaries are fixed, never data-dependent."""
    key = bucket_key(value)
    lo, hi = bucket_bounds(key)
    if key == "zero":
        assert float(value) <= 0.0 == hi
    else:
        assert lo <= float(value) < hi


@settings(max_examples=100, deadline=None)
@given(value=st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
def test_bucket_boundary_stability(value):
    """The key is a pure function of the value: observing more data
    (or the same value again) never re-buckets anything."""
    assert bucket_key(value) == bucket_key(value)
    hist = hist_of([value, value, value])
    assert hist.buckets == {bucket_key(value): 3}


def test_bucket_edges_are_half_open():
    # 2**(e-1) <= v < 2**e: each power of two opens its own bucket
    # (frexp mantissas live in [0.5, 1)).
    assert bucket_key(1.0) == "1"
    assert bucket_key(1.999) == "1"
    assert bucket_key(2.0) == "2"
    assert bucket_key(3.999) == "2"
    assert bucket_key(0.5) == "0"
    assert bucket_key(0) == "zero"
    assert bucket_key(-3) == "zero"


# -- merge algebra -------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    a=st.lists(samples, max_size=30),
    b=st.lists(samples, max_size=30),
    c=st.lists(samples, max_size=30),
)
def test_merge_associative_and_equals_pooled(a, b, c):
    """(a + b) + c == a + (b + c) == hist(a ++ b ++ c), exactly."""
    left = hist_of(a)
    left.merge(hist_of(b))
    left.merge(hist_of(c))

    bc = hist_of(b)
    bc.merge(hist_of(c))
    right = hist_of(a)
    right.merge(bc)

    pooled = hist_of(a + b + c)
    for one, other in ((left, right), (left, pooled)):
        assert one.count == other.count
        assert one.buckets == other.buckets
        assert one.min == other.min
        assert one.max == other.max
        assert one.sum == pytest.approx(other.sum)


@settings(max_examples=60, deadline=None)
@given(values=st.lists(samples, max_size=40))
def test_merge_into_empty_is_identity(values):
    hist = Histogram("empty")
    hist.merge(hist_of(values))
    original = hist_of(values)
    assert hist.count == original.count
    assert hist.buckets == original.buckets
    assert hist.min == original.min and hist.max == original.max


@settings(max_examples=60, deadline=None)
@given(values=st.lists(samples, min_size=1, max_size=40))
def test_quantile_is_an_upper_bound(values):
    hist = hist_of(values)
    values = [float(v) for v in values]
    for q in (0.5, 0.95, 1.0):
        bound = hist.quantile(q)
        rank = max(0, min(len(values) - 1, int(q * len(values)) - 1))
        assert bound >= sorted(values)[rank]
    assert hist.quantile(0.0) is not None
    assert Histogram("empty").quantile(0.5) is None


# -- snapshot round-trip -------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(values=st.lists(samples, max_size=40))
def test_snapshot_round_trip(values):
    hist = hist_of(values)
    restored = Histogram.from_snapshot("h", hist.snapshot())
    assert restored.count == hist.count
    assert restored.buckets == hist.buckets
    assert restored.min == hist.min and restored.max == hist.max
    assert restored.sum == hist.sum
    assert restored.snapshot() == hist.snapshot()


@settings(max_examples=50, deadline=None)
@given(values=st.lists(samples, max_size=30))
def test_snapshot_validates_in_registry(values):
    """The registry snapshot with histograms passes the same
    structural validator that guards ``repro.metrics/1``."""
    registry = MetricsRegistry()
    registry.counter("daemon.requests").inc()
    registry.timer("verb.define").observe(0.01)
    hist = registry.histogram("daemon.latency.define")
    for value in values:
        hist.observe(value)
    validate_registry_snapshot(registry.snapshot())


def test_histogram_section_only_when_present():
    """Pre-telemetry registries snapshot byte-identically: the
    ``histograms`` key appears only once a histogram exists."""
    registry = MetricsRegistry()
    registry.counter("x").inc()
    assert "histograms" not in registry.snapshot()
    registry.histogram("h").observe(1)
    assert "histograms" in registry.snapshot()


def test_registry_validator_rejects_bad_buckets():
    registry = MetricsRegistry()
    registry.histogram("h").observe(3)
    snapshot = registry.snapshot()
    snapshot["histograms"]["h"]["buckets"]["nonsense"] = 1
    with pytest.raises(ValueError, match="bucket"):
        validate_registry_snapshot(snapshot)
    snapshot = registry.snapshot()
    snapshot["histograms"]["h"]["buckets"]["2"] = 5  # sum != count
    with pytest.raises(ValueError, match="count"):
        validate_registry_snapshot(snapshot)


# -- event ring ----------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=32),
    emissions=st.integers(min_value=0, max_value=100),
)
def test_ring_overflow_drops_oldest_exactly(capacity, emissions):
    log = EventLog(capacity=capacity)
    for i in range(emissions):
        log.emit("delta", component="delta", index=i)
    assert log.emitted == emissions
    assert len(log) == min(capacity, emissions)
    assert log.dropped == max(0, emissions - capacity)
    kept = log.events()
    # The survivors are exactly the newest `capacity` events, in
    # emission order with contiguous seq values.
    expected = list(range(max(0, emissions - capacity), emissions))
    assert [e["seq"] for e in kept] == expected
    assert [e["index"] for e in kept] == expected


def test_event_shape_and_filters():
    log = EventLog()
    rid = new_request_id()
    log.emit("request", request_id=rid, component="server", verb="lint")
    log.emit("delta", request_id=rid, component="delta", op="define")
    log.emit("flow", request_id="other", component="flow", steps=7)
    for event in log.events():
        validate_event(event)
    assert len(log.events(kind="delta")) == 1
    assert len(log.events(request_id=rid)) == 2
    assert len(log.events(grep="steps")) == 1
    assert [e["kind"] for e in log.events(limit=1)] == ["flow"]


def test_listeners_see_every_event():
    log = EventLog()
    seen = []
    log.add_listener(seen.append)
    log.emit("job", component="serve")
    log.remove_listener(seen.append)
    log.emit("job", component="serve")
    assert [e["seq"] for e in seen] == [0]


# -- request binding -----------------------------------------------------------


def test_emit_event_noop_when_unbound():
    assert current_request() is None
    assert emit_event("delta", component="delta") is None


def test_bind_request_threads_the_log():
    log = EventLog()
    with bind_request(log=log) as ctx:
        emit_event("flow", component="flow", steps=3)
        assert current_request() is ctx
    assert current_request() is None
    events = log.events()
    assert len(events) == 1
    assert events[0]["request_id"] == ctx.request_id
    assert events[0]["steps"] == 3


def test_bind_request_id_override():
    log = EventLog()
    with bind_request("fixed-id-0001", log=log):
        emit_event("delta", component="delta")
        emit_event("delta", component="delta", request_id="other-id")
    ids = [e["request_id"] for e in log.events()]
    assert ids == ["fixed-id-0001", "other-id"]


# -- sink ----------------------------------------------------------------------


def test_sink_rotation_and_read_back(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(sink_path=path, sink_bytes=2048)
    for i in range(64):
        log.emit("delta", component="delta", index=i, pad="x" * 64)
        log.flush()
    log.close()
    assert os.path.exists(path)
    assert os.path.exists(path + ".1")
    assert os.path.getsize(path) <= 2048
    tail = read_event_log(path)
    assert tail and tail[-1]["index"] == 63
    for event in tail:
        validate_event(event)


def test_sink_flushes_per_request_not_per_event(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog(sink_path=path)
    log.emit("request", component="server")
    # Not flushed yet: emission only queues on the sink.
    assert read_event_log(path) == []
    log.flush()
    assert [e["kind"] for e in read_event_log(path)] == ["request"]
    log.close()


# -- validators ----------------------------------------------------------------


def test_validate_event_rejects_malformed():
    good = EventLog().emit("delta", component="delta")
    for mutation in (
        {"seq": "1"},
        {"seq": -1},
        {"ts": "now"},
        {"mono": None},
        {"kind": ""},
        {"kind": 7},
        {"request_id": ""},
        {"component": 4},
    ):
        bad = dict(good)
        bad.update(mutation)
        with pytest.raises(ValueError):
            validate_event(bad)
    with pytest.raises(ValueError):
        validate_event([])


def test_validate_telemetry_full_document():
    log = EventLog()
    log.emit("request", request_id="r1", component="server", verb="lint")
    registry = MetricsRegistry()
    registry.histogram("daemon.latency.lint").observe(0.003)
    document = {
        "schema": "repro.events/1",
        "generated_ts": 1.0,
        "uptime_s": 2.5,
        "events_emitted": log.emitted,
        "events_dropped": log.dropped,
        "events": log.events(),
        "metrics": registry.snapshot(),
        "slow": [{"request_id": "r1", "verb": "lint", "seconds": 1.2}],
        "projects": {"warm": [], "cold": [], "capacity": 8},
    }
    assert validate_telemetry(document) is document
    for mutation in (
        {"schema": "repro.events/2"},
        {"uptime_s": -1},
        {"events_emitted": "many"},
        {"events": {}},
        {"slow": [{"verb": "lint"}]},
        {"projects": []},
    ):
        bad = dict(document)
        bad.update(mutation)
        with pytest.raises(ValueError):
            validate_telemetry(bad)


def test_event_log_round_trips_lines():
    log = EventLog()
    log.emit("flow", request_id="r", component="flow", steps=2)
    lines = [json.dumps(e, sort_keys=True) for e in log.events()]
    assert read_event_log(lines) == log.events()
