"""Tests for the LC' graph sanitizer.

Two directions: healthy graphs from every language feature pass all
checks (including the Proposition 1 DTC comparison where eligible),
and deliberately corrupted graphs are caught by the matching check.
"""

import pytest

from repro.core.lc import SubtransitiveGraph, build_subtransitive_graph
from repro.lang import parse
from repro.lint.sanitize import DEFAULT_DTC_LIMIT, main, sanitize
from repro.obs import MetricsRegistry

from tests.helpers import sample_programs


class TestHealthyGraphs:
    @pytest.mark.parametrize(
        "name,program", list(sample_programs()),
        ids=[name for name, _ in sample_programs()],
    )
    def test_all_samples_pass(self, name, program):
        report = sanitize(build_subtransitive_graph(program))
        assert report.ok, report.render()

    def test_dtc_check_runs_on_small_monovariant_programs(self):
        sub = build_subtransitive_graph(
            parse("(fn[f] x => x x) (fn[g] y => y)")
        )
        report = sanitize(sub)
        assert report.ok
        assert report.dtc_checked
        assert "proposition-1-dtc" in report.checks

    def test_dtc_check_skipped_under_congruence(self):
        program = parse(
            "datatype intlist = Nil | Cons of int * intlist;\n"
            "letrec len = fn[len] xs => case xs of Nil => 0 "
            "| Cons(h, t) => 1 + len t end in len (Cons(1, Nil))"
        )
        report = sanitize(build_subtransitive_graph(program))
        assert report.ok
        assert not report.dtc_checked

    def test_dtc_limit_zero_disables(self):
        sub = build_subtransitive_graph(parse("(fn[f] x => x) 1"))
        report = sanitize(sub, dtc_limit=0)
        assert report.ok
        assert not report.dtc_checked

    def test_method_on_graph(self):
        sub = build_subtransitive_graph(parse("(fn[f] x => x) 1"))
        assert sub.sanitize().ok

    def test_registry_accounting(self):
        registry = MetricsRegistry()
        sub = build_subtransitive_graph(parse("(fn[f] x => x) 1"))
        report = sanitize(sub, registry=registry)
        assert report.ok
        assert registry.counter("sanitize.violations").value == 0
        assert registry.timer("sanitize.run").count == 1

    def test_report_serialises(self):
        sub = build_subtransitive_graph(parse("(fn[f] x => x) 1"))
        document = sanitize(sub).to_dict()
        assert document["ok"] is True
        assert document["violations"] == []
        assert document["checks"]
        assert "ok" in sanitize(sub).render()


def _corrupted(sub, close_edges=None):
    return SubtransitiveGraph(
        sub.program,
        sub.factory,
        sub.graph,
        sub.stats,
        sub.close_edges if close_edges is None else close_edges,
    )


class TestCorruptedGraphs:
    SRC = "(fn[f] x => x x) (fn[g] y => y)"

    def test_fabricated_close_edge_detected(self):
        sub = build_subtransitive_graph(parse(self.SRC))
        nodes = list(sub.factory.nodes)
        fake = next(
            (a, b)
            for a in nodes
            for b in nodes
            if a is not b and not sub.graph.has_edge(a, b)
        )
        report = sanitize(
            _corrupted(sub, frozenset(set(sub.close_edges) | {fake}))
        )
        assert not report.ok
        violated = {v["check"] for v in report.violations}
        assert "close-edge-justification" in violated
        assert "close-edge-accounting" in violated

    def test_dropped_close_edge_detected(self):
        sub = build_subtransitive_graph(parse(self.SRC))
        assert sub.close_edges, "need a close edge to drop"
        dropped = frozenset(list(sub.close_edges)[1:])
        report = sanitize(_corrupted(sub, dropped))
        assert not report.ok
        assert any(
            v["check"] == "close-edge-accounting"
            for v in report.violations
        )

    def test_cleared_demand_flag_detected(self):
        sub = build_subtransitive_graph(parse(self.SRC))
        victim = next(
            node
            for node in sub.factory.nodes
            if node.kind == "op" and node.demanded
        )
        victim.demanded = False
        try:
            report = sanitize(sub)
        finally:
            victim.demanded = True
        assert not report.ok
        assert any(
            v["check"] == "demand-consistency"
            for v in report.violations
        )

    def test_violations_land_on_registry(self):
        registry = MetricsRegistry()
        sub = build_subtransitive_graph(parse(self.SRC))
        dropped = frozenset(list(sub.close_edges)[1:])
        report = sanitize(_corrupted(sub, dropped), registry=registry)
        assert registry.counter("sanitize.violations").value == len(
            report.violations
        )
        assert "violation" in report.render()


class TestStandaloneRunner:
    def test_clean_file(self, tmp_path, capsys):
        path = tmp_path / "ok.ml"
        path.write_text("(fn[f] x => x) 1")
        assert main([str(path)]) == 0
        assert "sanitize: ok" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        assert main(["/nonexistent.ml"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.ml"
        path.write_text("let = ")
        assert main([str(path)]) == 2

    def test_dtc_limit_flag(self, tmp_path, capsys):
        path = tmp_path / "ok.ml"
        path.write_text("(fn[f] x => x) 1")
        assert main([str(path), "--dtc-limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "DTC" not in out

    def test_default_limit_is_paper_scale(self):
        assert DEFAULT_DTC_LIMIT == 600
