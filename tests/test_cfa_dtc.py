"""Tests for the DTC transition system (paper Section 3).

DTC is an independent implementation of the same semantics as the
standard algorithm, so beyond unit tests we verify pointwise agreement
and the Section-3 worked example.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfa.dtc import analyze_dtc
from repro.cfa.standard import analyze_standard
from repro.lang import parse
from repro.workloads.generators import random_typed_program

from tests.helpers import assert_same_label_sets, sample_programs


class TestWorkedExample:
    def test_section3_example_derivation(self):
        # (\x.(x x) (\x'.x')) derives \x'.x' at the whole program.
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        dtc = analyze_dtc(prog)
        g = prog.abstraction("g")
        assert dtc.derivable(prog.root, g)
        assert not dtc.derivable(prog.root, prog.abstraction("f"))

    def test_abs_axiom(self):
        prog = parse("fn[f] x => x")
        dtc = analyze_dtc(prog)
        assert dtc.derivable(prog.root, prog.root)

    def test_app1_adds_param_edge(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        dtc = analyze_dtc(prog)
        # APP-1: x -> e2, so x derives g.
        assert "g" in dtc.labels_of_var("x")
        # The discovered basic edge is present in the graph.
        assert dtc.basic_edges.has_edge("x", prog.root.arg.nid)

    def test_app2_adds_body_edge(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        dtc = analyze_dtc(prog)
        body = prog.root.fn.body
        assert dtc.basic_edges.has_edge(prog.root.nid, body.nid)

    def test_derivation_counter(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        dtc = analyze_dtc(prog)
        assert dtc.derivations > 0


class TestAgreementWithStandard:
    @pytest.mark.parametrize(
        "name,prog", list(sample_programs()), ids=lambda p: str(p)[:24]
    )
    def test_samples_agree(self, name, prog):
        assert_same_label_sets(
            prog, analyze_standard(prog), analyze_dtc(prog), name
        )

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_agree(self, seed):
        prog = random_typed_program(seed, fuel=18)
        assert_same_label_sets(
            prog, analyze_standard(prog), analyze_dtc(prog), f"seed={seed}"
        )
