"""Unit tests for the full-coverage rule port (PR 9).

Covers the machinery the port added around the golden/property
suites: the unported-pass guard and per-rule impl provenance in
``run_lints``, the ``rules_exempt`` escape hatch for the T-series
auditors, the checker's new bounded-transport discipline checks and
the projection pattern, and the parameterised f004/klimited program
builders.
"""

import pytest

from repro.core.lc import build_subtransitive_graph
from repro.lang import parse
from repro.lint import run_lints
from repro.lint.flowrules import AUDIT_PASSES
from repro.lint.passes import ALL_PASSES, LintPass
from repro.lint.ruleimpl import RULE_PASSES
from repro.rules import GRAPH_SCHEMA, RuleCheckError, check_programs
from repro.rules.check import check_rules
from repro.rules.dsl import (
    LABEL,
    NODE,
    Rel,
    Rule,
    RuleProgram,
    make_vars,
)
from repro.rules.fixtures import FIXTURES
from repro.rules.programs import (
    SHIPPED_PROGRAMS,
    constructor_k,
    f004_program,
    klimited_program,
)
from repro.rules.schema import EDGE, LAM_AT

N, M, S = make_vars("N M S")

PROGRAM = "let f = fn[f] x => x in let g = fn[g] y => y in f (g 1)"


def build(source=PROGRAM):
    program = parse(source)
    return program, build_subtransitive_graph(program)


class TestRunLintsGuard:
    def test_every_lf_pass_has_a_rule_twin(self):
        for cls in ALL_PASSES:
            if cls.code.startswith(("L", "F")):
                assert cls.code in RULE_PASSES, cls.code

    def test_audit_passes_are_rules_exempt(self):
        for cls in AUDIT_PASSES:
            assert cls.rules_exempt, cls.code

    def test_unported_pass_fails_loudly_under_rules(self):
        class GhostPass(LintPass):
            code = "X999"
            name = "ghost"
            severity = "info"

            def run(self, ctx, scope=None):
                return []

        program, sub = build()
        with pytest.raises(ValueError) as err:
            run_lints(
                program,
                sub,
                passes=list(ALL_PASSES) + [GhostPass],
                impl="rules",
            )
        assert "X999" in str(err.value)
        assert "no rule-program implementation" in str(err.value)

    def test_exempt_pass_runs_unchanged_under_rules(self):
        class ExemptGhostPass(LintPass):
            code = "X998"
            name = "exempt-ghost"
            severity = "info"
            rules_exempt = True

            def run(self, ctx, scope=None):
                return []

        program, sub = build()
        result = run_lints(
            program,
            sub,
            passes=list(ALL_PASSES) + [ExemptGhostPass],
            impl="rules",
        )
        assert result.pass_impl["X998"] == "hand"


class TestImplProvenance:
    def test_rules_mode_records_impl_per_pass(self):
        program, sub = build()
        result = run_lints(program, sub, impl="rules")
        for cls in ALL_PASSES:
            expected = "rules" if cls.code in RULE_PASSES else "hand"
            assert result.pass_impl[cls.code] == expected
        assert result.to_dict()["impl"] == result.pass_impl

    def test_hand_mode_envelope_has_no_impl_key(self):
        program, sub = build()
        result = run_lints(program, sub, impl="hand")
        assert result.pass_impl == {}
        assert "impl" not in result.to_dict()

    def test_filtered_carries_impl(self):
        program, sub = build()
        result = run_lints(program, sub, impl="rules")
        kept = result.filtered(min_severity="warning")
        assert kept.pass_impl == result.pass_impl


class TestTransportDiscipline:
    def test_k_mismatch_fixture_rejected(self):
        with pytest.raises(RuleCheckError) as err:
            check_programs(
                FIXTURES["k-transport-mismatch"](), schema=GRAPH_SCHEMA
            )
        assert "requires equal k" in str(err.value)

    def test_value_type_mismatch_fixture_rejected(self):
        with pytest.raises(RuleCheckError) as err:
            check_programs(
                FIXTURES["transport-type-mismatch"](),
                schema=GRAPH_SCHEMA,
            )
        assert "identical value-column types" in str(err.value)

    def test_projection_pattern_accepted(self):
        # A bounded value consumed nowhere is a key-existence view —
        # the pattern the dead-lambda port's called-view rule uses.
        calls = Rel("pcalls", NODE, LABEL, k=1)
        seen = Rel("seen", NODE)
        rules = [
            Rule(calls(N, S), [LAM_AT(N, S)], name="seed"),
            Rule(seen(N), [calls(N, S)], name="project"),
        ]
        checked = check_rules(rules, schema=GRAPH_SCHEMA)
        assert checked.linear

    def test_bounded_value_as_join_key_still_rejected(self):
        calls = Rel("jcalls", NODE, LABEL, k=1)
        bad = Rel("bad", NODE)
        rules = [
            Rule(calls(N, S), [LAM_AT(N, S)], name="seed"),
            Rule(bad(N), [calls(N, S), LAM_AT(M, S)], name="join"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check_rules(rules, schema=GRAPH_SCHEMA, require_linear=False)
        assert "projected away" in str(err.value)


class TestProgramBuilders:
    def test_constructor_k_matches_hand_formula(self):
        program = parse(PROGRAM)
        assert constructor_k(program) == 1

    def test_f004_program_parameterised_by_k(self):
        p1, p3 = f004_program(1), f004_program(3)
        (con_val_1,) = p1.outputs
        (con_val_3,) = p3.outputs
        assert con_val_1.k == 1 and con_val_3.k == 3

    def test_klimited_program_parameterised_by_k(self):
        (klabels,) = klimited_program(5).outputs
        assert klabels.k == 5

    def test_shipped_set_covers_every_ported_analysis(self):
        names = {p.name for p in SHIPPED_PROGRAMS}
        assert names == {
            "lint-l001",
            "lint-l002",
            "lint-l004",
            "lint-l005",
            "lint-f001",
            "lint-f002",
            "lint-f003",
            "lint-f004",
            "app-called-once",
            "app-effects",
            "app-klimited",
        }
