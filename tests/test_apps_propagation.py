"""Tests for the bounded-set propagation engine (Section 9 machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.propagation import MANY, propagate_bounded_sets
from repro.graph.digraph import Digraph


def run(edges, seeds, k, direction="backward"):
    g = Digraph()
    g.add_edges(edges)
    for node in seeds:
        g.add_node(node)
    downstream = g.predecessors if direction == "backward" else g.successors
    return propagate_bounded_sets(
        g,
        {node: frozenset(tokens) for node, tokens in seeds.items()},
        k,
        downstream=downstream,
    )


class TestBasics:
    def test_seed_stays(self):
        values = run([], {"a": {"t"}}, k=1)
        assert values["a"] == {"t"}

    def test_backward_propagation_along_edge(self):
        # edge a -> b; seed at b; a sees it (k-limited CFA direction).
        values = run([("a", "b")], {"b": {"t"}}, k=1)
        assert values["a"] == {"t"}

    def test_forward_propagation(self):
        values = run([("a", "b")], {"a": {"s"}}, k=1, direction="forward")
        assert values["b"] == {"s"}

    def test_join_of_two_sources(self):
        edges = [("a", "b"), ("a", "c")]
        values = run(edges, {"b": {"x"}, "c": {"y"}}, k=2)
        assert values["a"] == {"x", "y"}

    def test_join_exceeding_k_is_many(self):
        edges = [("a", "b"), ("a", "c")]
        values = run(edges, {"b": {"x"}, "c": {"y"}}, k=1)
        assert values["a"] is MANY

    def test_many_is_absorbing(self):
        edges = [("a", "b"), ("b", "c"), ("b", "d")]
        values = run(edges, {"c": {"x"}, "d": {"y"}}, k=1)
        assert values["b"] is MANY
        assert values["a"] is MANY

    def test_oversized_seed_is_many(self):
        values = run([], {"a": {"x", "y", "z"}}, k=2)
        assert values["a"] is MANY

    def test_unreachable_nodes_absent(self):
        values = run([("a", "b")], {"a": {"t"}}, k=1)
        assert "b" not in values  # backward: b gets nothing

    def test_cycle_terminates(self):
        edges = [("a", "b"), ("b", "a")]
        values = run(edges, {"a": {"t"}}, k=1)
        assert values["a"] == {"t"}
        assert values["b"] == {"t"}

    def test_cycle_with_many(self):
        edges = [("a", "b"), ("b", "a"), ("a", "c"), ("b", "d")]
        values = run(edges, {"c": {"x"}, "d": {"y"}}, k=1)
        assert values["a"] is MANY
        assert values["b"] is MANY

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            run([], {"a": {"t"}}, k=0)

    def test_empty_seed_ignored(self):
        values = run([("a", "b")], {"b": set()}, k=1)
        assert values == {}


class TestFixpointProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=30
        ),
        seeds=st.dictionaries(
            st.integers(0, 8),
            st.sets(st.integers(0, 5), max_size=3),
            max_size=4,
        ),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_matches_exhaustive_reachability(self, edges, seeds, k):
        """The k-bounded answer equals the exact reachability-union
        answer, truncated at k."""
        g = Digraph()
        g.add_edges(edges)
        for node in range(9):
            g.add_node(node)
        values = propagate_bounded_sets(
            g,
            {n: frozenset(s) for n, s in seeds.items()},
            k,
            downstream=g.predecessors,
        )
        from repro.graph.reachability import reachable_from

        for node in g.nodes():
            exact = set()
            for reached in reachable_from(g, [node]):
                exact |= seeds.get(reached, set())
            got = values.get(node, frozenset())
            if len(exact) > k:
                assert got is MANY
            else:
                assert got == frozenset(exact)
