"""Tests for the incremental analysis session.

The key property: growing a session definition-by-definition yields
exactly the same analysis as batch-analysing the equivalent
``let``-chained program — the paper's "incremental" claim made
executable.
"""

import pytest

from repro.core.queries import analyze_subtransitive
from repro.errors import ScopeError
from repro.lang import builders as b
from repro.lang import parse
from repro.session import AnalysisSession
from repro.workloads.generators import intlist_decl


class TestDefineAndQuery:
    def test_single_definition(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        assert session.labels_of("id") == {"id"}

    def test_cross_definition_flow(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        session.define("g", "fn[g] y => y")
        session.define("r", "id g")
        assert session.labels_of("r") == {"g"}

    def test_query_expression(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        assert session.query("id id") == {"id"}

    def test_queries_between_definitions(self):
        session = AnalysisSession()
        session.define("a", "fn[a] x => x")
        first = session.query("a")
        session.define("c", "fn[c] y => a y")
        second = session.labels_of("c")
        assert first == {"a"}
        assert second == {"c"}

    def test_self_recursive_definition(self):
        session = AnalysisSession()
        session.define("loop", "fn[loop] n => loop n")
        assert session.labels_of("loop") == {"loop"}

    def test_undefined_name_raises(self):
        session = AnalysisSession()
        with pytest.raises(ScopeError):
            session.labels_of("ghost")

    def test_unbound_reference_raises(self):
        session = AnalysisSession()
        with pytest.raises(ScopeError):
            session.define("bad", "missing 1")

    def test_redefinition_unions_flows(self):
        session = AnalysisSession()
        session.define("f", "fn[v1] x => x")
        session.define("f", "fn[v2] y => y")
        assert session.labels_of("f") == {"v1", "v2"}

    def test_datatypes_in_session(self):
        session = AnalysisSession(datatypes=[intlist_decl()])
        session.define("xs", "Cons(1, Cons(2, Nil))")
        session.define(
            "head", "case xs of Nil => 0 | Cons(h, t) => h end"
        )
        assert session.evaluate("head").value == 1


class TestIncrementalEqualsBatch:
    DEFINITIONS = [
        ("compose", "fn[compose] f => fn[c2] g => fn[c3] x => f (g x)"),
        ("inc", "fn[inc] a => a + 1"),
        ("dbl", "fn[dbl] b => b * 2"),
        ("both", "compose inc dbl"),
        ("other", "compose dbl inc"),
    ]

    def batch_program(self):
        source = ""
        for name, body in self.DEFINITIONS:
            source += f"let {name} = {body} in "
        source += "both"
        return parse(source)

    def test_per_name_label_sets_match_batch(self):
        session = AnalysisSession()
        for name, body in self.DEFINITIONS:
            session.define(name, body)
        batch = analyze_subtransitive(self.batch_program())
        for name, _ in self.DEFINITIONS:
            assert session.labels_of(name) == batch.labels_of_var(
                name
            ), name

    def test_graph_grows_monotonically(self):
        session = AnalysisSession()
        sizes = []
        for name, body in self.DEFINITIONS:
            session.define(name, body)
            sizes.append((session.graph_nodes, session.graph_edges))
        assert sizes == sorted(sizes)

    def test_each_definition_costs_roughly_its_own_size(self):
        # The incremental point: adding one small definition to a big
        # session must not rebuild the world.
        session = AnalysisSession()
        for i in range(50):
            session.define(f"w{i}", f"fn x => x + {i}")
        before = session.graph_nodes
        session.define("one_more", "fn y => y * 2")
        added = session.graph_nodes - before
        assert added < 20


class TestEvaluate:
    def test_evaluate_uses_definitions(self):
        session = AnalysisSession()
        session.define("inc", "fn x => x + 1")
        assert session.evaluate("inc 41").value == 42

    def test_effects_collected_at_define_time(self):
        session = AnalysisSession()
        session.define("noise", "print 7")
        assert session.output == ["7"]

    def test_recursive_evaluation(self):
        session = AnalysisSession()
        session.define(
            "fact",
            "fn n => if n < 2 then 1 else n * fact (n - 1)",
        )
        assert session.evaluate("fact 5").value == 120

    def test_soundness_of_session_analysis(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        session.define("g", "fn[g] y => y")
        result = session.evaluate("id g")
        assert isinstance(result.value, object)
        # The analysed label set covers the runtime value.
        assert session.query("id g") >= {"g"}


class TestSessionLint:
    def test_dead_definition_flagged(self):
        session = AnalysisSession()
        session.define("dead", "fn[dead] x => x")
        result = session.lint()
        assert "L001" in result.rules_fired()

    def test_redefinition_flips_verdicts(self):
        session = AnalysisSession()
        session.define("g", "fn[g] y => y")
        first = session.lint()
        assert any(
            f.rule == "L001" and f.label == "g" for f in first.findings
        )
        session.define("use", "g 1")
        second = session.lint()
        assert not any(
            f.rule == "L001" and f.label == "g"
            for f in second.findings
        )
        assert any(
            f.rule == "L003" and f.label == "g"
            for f in second.findings
        )

    def test_repeat_lint_hits_cache(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        first = session.lint()
        second = session.lint()
        assert second is first
        registry = session.engine.stats.registry
        assert registry.counter("lint.session.cache_hits").value == 1

    def test_graph_backend_threads_through_to_session_lints(self):
        # Regression: the session used to pin the object backend; a
        # csr session must build csr graphs and re-lint on them with
        # verdicts identical to the object backend's.
        results = {}
        for backend in ("object", "csr"):
            session = AnalysisSession(graph_backend=backend)
            assert session.engine.graph_backend == backend
            session.define("g", "fn[g] y => y")
            session.lint()
            session.define("use", "g 1")
            result = session.lint()
            results[backend] = sorted(
                (f.rule, f.nid, f.message) for f in result.findings
            )
        assert results["object"] == results["csr"]

    def test_incremental_path_taken_and_timed(self):
        session = AnalysisSession()
        session.define("a", "fn[a] x => x")
        session.lint()
        session.define("b", "fn[b] y => y")
        session.lint()
        registry = session.engine.stats.registry
        assert registry.counter("lint.session.incremental").value == 1
        assert registry.timer("session.lint").count == 2

    def test_incremental_lint_equals_full_lint(self):
        from repro.lint import run_lints

        session = AnalysisSession()
        steps = [
            ("g", "fn[g] y => y"),
            ("h", "fn[h] z => z"),
            ("use", "g 1"),
            ("use2", "g 2"),
            ("pair", "(h, use)"),
        ]
        for name, source in steps:
            session.define(name, source)
            session.lint()  # exercise the incremental path each step
        incremental = session.lint()
        full = run_lints(session.program, session._graph_view())
        assert {(f.rule, f.nid) for f in incremental.findings} == {
            (f.rule, f.nid) for f in full.findings
        }

    def test_explicit_passes_bypass_cache(self):
        from repro.lint import DeadLambdaPass

        session = AnalysisSession()
        session.define("dead", "fn[dead] x => x")
        cached = session.lint()
        explicit = session.lint(passes=[DeadLambdaPass])
        assert explicit is not cached
        assert set(explicit.rules_fired()) == {"L001"}

    def test_session_sanitize_ok(self):
        session = AnalysisSession()
        session.define("id", "fn[id] x => x")
        session.define("r", "id id")
        report = session.sanitize()
        assert report.ok, report.render()
        # The DTC oracle cannot see session binding edges; the
        # sanitizer must skip that comparison for session graphs.
        assert not report.dtc_checked
