"""Tests for the F-series flow rules and T-series linearity auditor.

Complements tests/test_lint.py (which pins the L-series): positive and
negative cases per F rule, the shipped letrec/record fixtures under
examples/, and the T-series verdicts on both lint engines (graph path
and standard-CFA fallback).
"""

import pathlib

import pytest

from repro.cfa.standard import analyze_standard
from repro.core.hybrid import HybridResult
from repro.lang import parse
from repro.lint import run_lints
from repro.workloads.cubic import make_unbounded_source

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def lint_source(src, **kwargs):
    program = parse(src)
    return program, run_lints(program, **kwargs)


def fired(result):
    return set(result.rules_fired())


# -- shipped fixtures ---------------------------------------------------------


class TestFixtures:
    def read(self, name):
        return (EXAMPLES / name).read_text(encoding="utf-8")

    def test_letrec_fixture(self):
        _, result = lint_source(self.read("letrec_lints.lam"))
        assert fired(result) == {"F001", "F002", "F003", "L003"}
        by_rule = result.by_rule()
        # Both the `+` operand and the print argument carry the taint.
        assert len(by_rule["F001"]) == 2
        # The cell itself escapes through `print cell`, not its contents.
        assert len(by_rule["F002"]) == 1
        assert by_rule["F003"][0].label == "lazy"

    def test_record_fixture(self):
        _, result = lint_source(self.read("record_lints.lam"))
        assert fired(result) == {"F004", "L003"}
        (finding,) = result.by_rule()["F004"]
        assert "Square" in finding.message
        assert "Circle" in finding.message


# -- F-series unit cases ------------------------------------------------------


class TestTaintedSink:
    def test_deref_reaching_print_fires(self):
        _, result = lint_source(
            "let r = ref 1 in let x = !r in print x"
        )
        assert "F001" in fired(result)

    def test_pure_sink_is_silent(self):
        _, result = lint_source("print 2")
        assert "F001" not in fired(result)

    def test_cell_itself_is_not_taint(self):
        # Printing the *cell* is F002's business, not F001's.
        _, result = lint_source("let r = ref 1 in print r")
        assert "F001" not in fired(result)


class TestEscapingRef:
    def test_ref_into_sink_fires(self):
        _, result = lint_source("let r = ref 1 in print r")
        assert "F002" in fired(result)

    def test_deref_into_sink_is_silent(self):
        _, result = lint_source("let r = ref 1 in print !r")
        assert "F002" not in fired(result)


class TestUnneededParam:
    def test_unused_param_fires(self):
        _, result = lint_source("(fn[k] x => 1) 2")
        assert "F003" in fired(result)

    def test_used_param_is_silent(self):
        _, result = lint_source("(fn[id] x => x) 2")
        assert "F003" not in fired(result)

    def test_underscore_param_opts_out(self):
        _, result = lint_source("(fn[k] _x => 1) 2")
        assert "F003" not in fired(result)


class TestUnreachableBranch:
    DECL = "datatype d = A | B of int;\n"

    def test_missing_constructor_fires(self):
        _, result = lint_source(
            self.DECL + "case A of | A => 1 | B(n) => n end"
        )
        assert "F004" in fired(result)

    def test_all_constructors_reachable_is_silent(self):
        _, result = lint_source(
            self.DECL
            + "let v = if true then A else B(1) in "
            "case v of | A => 1 | B(n) => n end"
        )
        assert "F004" not in fired(result)


# -- T-series: both engines agree ---------------------------------------------


class TestLinearityRules:
    def test_unbounded_family_fires_t_rules(self):
        _, result = lint_source(make_unbounded_source(8))
        codes = fired(result)
        assert {"T001", "T002", "T003"} <= codes

    def test_bounded_program_is_t_silent(self):
        _, result = lint_source("let id = fn[id] x => x in id 1")
        assert not {"T001", "T002", "T003"} & fired(result)

    def test_untypeable_program_fires_t001(self):
        _, result = lint_source("(fn[w] x => x x) (fn[v] y => y y)")
        codes = fired(result)
        assert "T001" in codes
        assert "T003" in codes

    def test_fallback_engine_agrees(self):
        src = make_unbounded_source(8)
        program = parse(src)
        graph_result = run_lints(program)
        fallback = run_lints(
            program,
            HybridResult(
                "standard",
                analyze_standard(program),
                fallback_reason="budget",
            ),
        )
        assert fallback.engine == "standard"
        graph_t = {
            f.rule for f in graph_result.findings
            if f.rule.startswith("T")
        }
        fallback_t = {
            f.rule for f in fallback.findings
            if f.rule.startswith("T")
        }
        assert graph_t == fallback_t
        assert all(
            f.via == "standard"
            for f in fallback.findings
            if f.rule.startswith("T")
        )

    def test_t_findings_anchor_at_root(self):
        program, result = lint_source(make_unbounded_source(4))
        for finding in result.findings:
            if finding.rule.startswith("T"):
                assert finding.nid == program.root.nid
