"""Regression tests: session-state corruption on failed operations.

Two historical bugs, both of the shape "a failed operation left the
session in a state worse than before the operation":

1. a failed *re*definition (eager evaluation raising) popped the
   previous, working binding out of the evaluation environment instead
   of restoring it;
2. ``_SessionProgram.index`` committed nodes/labels/binders while
   walking, so a validation error (duplicate label, constructor arity)
   raised mid-walk left the program tables half-updated and the
   session unusable for retries.

These tests fail against the pre-fix sessions.
"""

import pytest

from repro.errors import ScopeError
from repro.session import AnalysisSession
from repro.workloads.generators import intlist_decl


class TestRedefinitionEvalFailure:
    def test_failed_redefinition_keeps_previous_value(self):
        session = AnalysisSession()
        session.define("inc", "fn[inc] x => x + 1")
        assert session.evaluate("inc 1").value == 2
        # Analyses fine (labels flow), but eager evaluation raises:
        # int + closure is a runtime type error.
        session.define("inc", "1 + (fn[v2] z => z)")
        # The previous working binding must survive the failure.
        assert session.evaluate("inc 1").value == 2

    def test_failed_first_definition_stays_unbound(self):
        session = AnalysisSession()
        session.define("broken", "1 2")  # applying a literal raises
        # There was never a working value; the name must not linger
        # bound to garbage.
        assert "broken" not in session._env

    def test_successful_redefinition_still_wins(self):
        session = AnalysisSession()
        session.define("f", "fn[f1] x => x + 1")
        session.define("f", "fn[f2] x => x + 10")
        assert session.evaluate("f 1").value == 11


class TestAtomicIndexing:
    def test_duplicate_label_leaves_program_untouched(self):
        session = AnalysisSession()
        session.define("a", "fn[dup] x => x")
        size = session.program.size
        labels = set(session.program.label_table)
        binders = set(session.program.binders)
        history = len(session.history)
        with pytest.raises(ScopeError):
            # "one" is walked (and, pre-fix, committed) before the
            # duplicate "dup" is discovered.
            session.define("b", "fn[one] p => fn[dup] q => q")
        assert session.program.size == size
        assert set(session.program.label_table) == labels
        assert "one" not in session.program.label_table
        assert set(session.program.binders) == binders
        assert len(session.history) == history

    def test_failed_define_is_retryable(self):
        session = AnalysisSession()
        session.define("a", "fn[dup] x => x")
        with pytest.raises(ScopeError):
            session.define("b", "fn[one] p => fn[dup] q => q")
        # The retry with a fixed label must succeed and the node table
        # must still be densely numbered.
        session.define("b", "fn[one] p => fn[two] q => q")
        program = session.program
        assert [node.nid for node in program.nodes] == list(
            range(program.size)
        )
        assert session.labels_of("a") == frozenset({"dup"})
        assert session.query("a b") == frozenset({"one"})

    def test_duplicate_label_within_one_expression(self):
        session = AnalysisSession()
        size = session.program.size
        with pytest.raises(ScopeError):
            session.define("x", "(fn[d] p => p) (fn[d] q => q)")
        assert session.program.size == size
        assert "d" not in session.program.label_table

    def test_constructor_arity_failure_is_atomic(self):
        session = AnalysisSession(datatypes=[intlist_decl()])
        session.define("nil", "Nil")
        size = session.program.size
        with pytest.raises(ScopeError):
            # The lambda is walked before the bad Cons arity.
            session.define("bad", "fn[w] x => Cons(x)")
        assert session.program.size == size
        assert "w" not in session.program.label_table
        # Session still fully usable.
        session.define("cons1", "fn[c1] x => Cons(x, Nil)")
        assert session.labels_of("cons1") == frozenset({"c1"})

    def test_case_pattern_arity_failure_is_atomic(self):
        session = AnalysisSession(datatypes=[intlist_decl()])
        session.define("nil", "Nil")
        size = session.program.size
        binders = set(session.program.binders)
        with pytest.raises(ScopeError):
            session.define(
                "bad",
                "fn[w] xs => case xs of Nil => 0 "
                "| Cons(h) => 1 end",
            )
        assert session.program.size == size
        assert set(session.program.binders) == binders


class TestUndefine:
    """``undefine`` shrinks the binding surface without disturbing
    the monotone graph, and every mutation bumps ``graph_version``."""

    def test_undefine_unbinds_the_name(self):
        session = AnalysisSession()
        session.define("inc", "fn[inc] x => x + 1")
        session.undefine("inc")
        with pytest.raises(ScopeError):
            session.labels_of("inc")
        assert "inc" not in session._env

    def test_undefine_unknown_name_raises(self):
        session = AnalysisSession()
        with pytest.raises(ScopeError, match="undefined"):
            session.undefine("ghost")

    def test_redefine_after_undefine_is_a_first_definition(self):
        session = AnalysisSession()
        session.define("f", "fn[f1] x => x + 1")
        session.undefine("f")
        session.define("f", "fn[f2] x => x + 10")
        # No stale evaluation binding survived the gap.
        assert session.evaluate("f 1").value == 11
        # Monovariant session analysis unions flows across versions;
        # the old label may linger in the graph but the binding is
        # the new definition.
        assert "f2" in session.labels_of("f")

    def test_graph_version_bumps_on_every_mutation(self):
        session = AnalysisSession()
        v0 = session.graph_version
        session.define("a", "fn[a] x => x")
        v1 = session.graph_version
        session.query("a")
        v2 = session.graph_version
        session.undefine("a")
        v3 = session.graph_version
        assert v0 < v1 < v2 < v3

    def test_failed_undefine_does_not_bump_version(self):
        session = AnalysisSession()
        session.define("a", "fn[a] x => x")
        version = session.graph_version
        with pytest.raises(ScopeError):
            session.undefine("ghost")
        assert session.graph_version == version

    def test_undefine_invalidates_the_lint_cache(self):
        session = AnalysisSession()
        session.define("unused", "fn[u] x => x")
        first = session.lint()
        session.undefine("unused")
        second = session.lint()
        assert second is not first
