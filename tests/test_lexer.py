"""Unit tests for the mini-ML lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.kind != "EOF"]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        assert kinds("") == ["EOF"]

    def test_whitespace_only(self):
        assert kinds("  \t\n  ") == ["EOF"]

    def test_identifier(self):
        tokens = tokenize("abc")
        assert tokens[0] == Token("IDENT", "abc", 1, 1)

    def test_identifier_with_digits_underscore_prime(self):
        assert values("x_1'") == ["x_1'"]

    def test_constructor_identifier(self):
        assert kinds("Cons")[:1] == ["CONID"]

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "INT"
        assert tokens[0].value == "42"

    def test_keywords_are_their_own_kind(self):
        for kw in ["fn", "let", "letrec", "in", "if", "then", "else",
                   "case", "of", "end", "datatype", "ref", "true",
                   "false"]:
            assert kinds(kw)[0] == kw

    def test_keyword_prefix_is_still_identifier(self):
        # 'lettuce' starts with 'let' but is one identifier.
        assert kinds("lettuce")[0] == "IDENT"

    def test_underscore_starts_identifier(self):
        assert kinds("_x")[0] == "IDENT"


class TestSymbols:
    def test_maximal_munch_arrow(self):
        assert kinds("=>")[:1] == ["=>"]

    def test_maximal_munch_assign_vs_colon(self):
        assert kinds(":=")[:1] == [":="]

    def test_eq_vs_eqeq(self):
        assert kinds("== =")[:2] == ["==", "="]

    def test_leq_vs_less(self):
        assert kinds("<= <")[:2] == ["<=", "<"]

    def test_all_single_symbols(self):
        src = "+ - * ( ) , ; | # ! [ ]"
        expected = src.split()
        assert kinds(src)[:-1] == expected

    def test_application_like_stream(self):
        assert values("f (g x)") == ["f", "(", "g", "x", ")"]


class TestComments:
    def test_simple_comment_is_skipped(self):
        assert values("a (* comment *) b") == ["a", "b"]

    def test_nested_comment(self):
        assert values("a (* outer (* inner *) still *) b") == ["a", "b"]

    def test_comment_spanning_lines(self):
        src = "a (* line1\nline2 *) b"
        tokens = tokenize(src)
        assert tokens[1].line == 2  # b is on line 2

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a (* never closed")

    def test_unterminated_nested_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("(* outer (* inner *) ")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_columns_advance_past_symbols(self):
        tokens = tokenize("x:=y")
        assert (tokens[1].column, tokens[2].column) == (2, 4)


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\n  ?")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
