"""Tests for the programmatic builder DSL."""

import pytest

from repro.lang import builders as b
from repro.lang import parse_expr
from repro.lang.ast import App, Let, Letrec, Record
from repro.lang.compare import ast_equal
from repro.lang.eval import evaluate


class TestBuilders:
    def test_app_curried(self):
        expr = b.app(b.var("f"), b.var("x"), b.var("y"))
        assert ast_equal(expr, parse_expr("f x y"))

    def test_app_requires_argument(self):
        with pytest.raises(ValueError):
            b.app(b.var("f"))

    def test_lets_chain(self):
        expr = b.lets(
            [("a", b.lit(1)), ("c", b.lit(2))],
            b.prim("add", b.var("a"), b.var("c")),
        )
        assert ast_equal(expr, parse_expr("let a = 1 in let c = 2 in a + c"))

    def test_lam_label(self):
        assert b.lam("x", b.var("x"), label="me").label == "me"

    def test_record_and_proj(self):
        expr = b.proj(2, b.record(b.lit(1), b.lit(2)))
        assert ast_equal(expr, parse_expr("#2 (1, 2)"))

    def test_seq_evaluates_in_order(self):
        expr = b.seq(
            b.prim("print", b.lit(1)),
            b.prim("print", b.lit(2)),
            b.lit(3),
        )
        prog = b.program(expr)
        result = evaluate(prog)
        assert result.output == ["1", "2"]
        assert result.value == 3

    def test_unit(self):
        assert b.unit().value is None

    def test_datatype_builder(self):
        from repro.types.types import INT

        decl = b.datatype("pair", MkPair=(INT, INT), Empty=())
        assert decl.constructors["MkPair"] == (INT, INT)
        assert decl.constructors["Empty"] == ()

    def test_program_wraps_and_renames(self):
        expr = b.app(
            b.lam("x", b.var("x")), b.lam("x", b.var("x"))
        )
        prog = b.program(expr)
        binders = [
            n.param for n in prog.nodes if type(n).__name__ == "Lam"
        ]
        assert len(set(binders)) == 2

    def test_ife_condition_order(self):
        expr = b.ife(b.lit(True), b.lit(1), b.lit(2))
        assert ast_equal(expr, parse_expr("if true then 1 else 2"))

    def test_ref_cluster(self):
        expr = b.deref(b.ref(b.lit(5)))
        assert ast_equal(expr, parse_expr("!(ref 5)"))

    def test_assign_builder(self):
        expr = b.assign(b.var("c"), b.lit(1))
        assert ast_equal(expr, parse_expr("c := 1"))
