"""Tests for the ``repro.daemon/1`` wire protocol and the JSONL
framing helpers it shares with ``repro.batch/1``."""

import json

import pytest

from repro.daemon import protocol
from repro.daemon.protocol import (
    SCHEMA,
    VERBS,
    error_response,
    ok_response,
    request_record,
    validate_daemon_record,
)
from repro.serve.protocol import jsonl_dumps, jsonl_loads


class TestRecordBuilders:
    def test_request_record_minimal(self):
        record = request_record(1, "status")
        assert record == {
            "schema": SCHEMA,
            "record": "request",
            "id": 1,
            "verb": "status",
        }
        assert validate_daemon_record(record) is record

    def test_request_record_full(self):
        record = request_record(
            7, "define", project="p", name="f", source="fn x => x"
        )
        assert record["project"] == "p"
        assert record["name"] == "f"
        assert record["source"] == "fn x => x"
        assert validate_daemon_record(record) is record

    def test_ok_response_shape(self):
        response = ok_response(3, "lint", {"counts": {}})
        assert response["status"] == "ok"
        assert response["error"] is None
        assert validate_daemon_record(response) is response

    def test_error_response_shape(self):
        response = error_response(None, None, "boom")
        assert response["status"] == "error"
        assert response["result"] is None
        assert validate_daemon_record(response) is response


class TestRequestValidation:
    def test_every_verb_is_constructible(self):
        for verb in VERBS:
            fields = {}
            if verb in protocol.PROJECT_VERBS:
                fields["project"] = "p"
            if verb in ("define", "undefine", "query"):
                fields["name"] = "f"
            if verb == "define":
                fields["source"] = "()"
            validate_daemon_record(request_record(1, verb, **fields))

    @pytest.mark.parametrize(
        "mutate, path",
        [
            (lambda r: r.pop("schema"), "$.schema"),
            (lambda r: r.update(record="frame"), "$.record"),
            (lambda r: r.update(id="one"), "$.id"),
            (lambda r: r.update(id=True), "$.id"),
            (lambda r: r.update(verb="explode"), "$.verb"),
        ],
    )
    def test_malformed_requests_name_the_path(self, mutate, path):
        record = request_record(1, "status")
        mutate(record)
        with pytest.raises(ValueError, match=f"{path.replace('$', '[$]')}"):
            validate_daemon_record(record)

    def test_project_verbs_require_project(self):
        record = request_record(1, "analyze")
        with pytest.raises(ValueError, match="project"):
            validate_daemon_record(record)

    def test_define_requires_name_and_source(self):
        with pytest.raises(ValueError, match="name"):
            validate_daemon_record(
                request_record(1, "define", project="p", source="()")
            )
        with pytest.raises(ValueError, match="source"):
            validate_daemon_record(
                request_record(1, "define", project="p", name="f")
            )

    def test_query_requires_exactly_one_of_name_label(self):
        with pytest.raises(ValueError, match="exactly one"):
            validate_daemon_record(request_record(1, "query", project="p"))
        with pytest.raises(ValueError, match="exactly one"):
            validate_daemon_record(
                request_record(1, "query", project="p", name="f", label="l")
            )
        validate_daemon_record(
            request_record(1, "query", project="p", label="l")
        )


class TestResponseValidation:
    def test_ok_requires_null_error(self):
        response = ok_response(1, "status", {})
        response["error"] = "sneaky"
        with pytest.raises(ValueError, match="error=null"):
            validate_daemon_record(response)

    def test_ok_requires_result_object(self):
        response = ok_response(1, "status", {})
        response["result"] = "text"
        with pytest.raises(ValueError, match="result object"):
            validate_daemon_record(response)

    def test_error_requires_message(self):
        response = error_response(1, "lint", "x")
        response["error"] = ""
        with pytest.raises(ValueError, match="non-empty error"):
            validate_daemon_record(response)

    def test_error_requires_null_result(self):
        response = error_response(1, "lint", "x")
        response["result"] = {}
        with pytest.raises(ValueError, match="result=null"):
            validate_daemon_record(response)

    def test_response_id_may_be_null(self):
        validate_daemon_record(error_response(None, "lint", "bad frame"))


class TestSharedFraming:
    """Both protocols ride the same jsonl_dumps/jsonl_loads helpers —
    framing errors carry 1-based line numbers and distinguish
    not-JSON from schema violations."""

    def records(self):
        return [
            request_record(1, "define", project="p", name="f", source="()"),
            ok_response(1, "define", {"delta": True}),
        ]

    def test_roundtrip(self):
        text = protocol.to_jsonl(self.records())
        assert protocol.read_jsonl(text) == self.records()

    def test_one_compact_record_per_line(self):
        lines = protocol.to_jsonl(self.records()).splitlines()
        assert len(lines) == 2
        for line in lines:
            assert "\n" not in line
            assert json.loads(line)  # compact but valid

    def test_not_json_error_names_the_line(self):
        text = protocol.to_jsonl(self.records()) + "\n{nope\n"
        with pytest.raises(ValueError, match="line 3.*not JSON"):
            protocol.read_jsonl(text)

    def test_schema_error_names_the_line(self):
        good = protocol.to_jsonl(self.records())
        bad = json.dumps({"schema": SCHEMA, "record": "frame"})
        with pytest.raises(ValueError, match="line 3"):
            protocol.read_jsonl(good + "\n" + bad + "\n")

    def test_blank_lines_ignored_with_stable_numbering(self):
        lines = protocol.to_jsonl(self.records()).splitlines()
        text = lines[0] + "\n\n" + lines[1] + "\n\n{broken\n"
        with pytest.raises(ValueError, match="line 5"):
            protocol.read_jsonl(text)

    def test_helpers_serve_the_batch_protocol_too(self):
        from repro.serve.protocol import batch_header, validate_batch_record

        record = batch_header(options={}, workers=1, timeout=None)
        text = jsonl_dumps([record])
        assert jsonl_loads(
            text, validate_batch_record, what="batch record"
        ) == [record]
