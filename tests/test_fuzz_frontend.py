"""Robustness fuzzing for the front end.

The parser/lexer must never crash with anything other than their
declared error types, no matter the input — a property worth fuzzing
because analysis tools routinely meet garbage input.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    LexError,
    ParseError,
    ReproError,
    ScopeError,
    UnknownConstructorError,
)
from repro.lang import parse
from repro.lang.lexer import tokenize

FRONTEND_ERRORS = (
    LexError,
    ParseError,
    ScopeError,
    UnknownConstructorError,
)

# Character soup biased towards the language's own alphabet, so the
# fuzzer reaches deeper parser states than pure noise would.
_alphabet = (
    string.ascii_letters
    + string.digits
    + " \n\t()[]{}<>=+-*,;|#!:'\"._"
)

_token_soup = st.lists(
    st.sampled_from(
        [
            "fn", "let", "letrec", "in", "if", "then", "else", "case",
            "of", "end", "datatype", "ref", "true", "false", "x", "y",
            "f", "Cons", "Nil", "1", "42", "=>", "->", ":=", "==",
            "<=", "<", "=", "+", "-", "*", "(", ")", ",", ";", "|",
            "#", "!", "[", "]", "print", "not",
        ]
    ),
    max_size=30,
).map(" ".join)


class TestLexerFuzz:
    @settings(max_examples=200, deadline=None)
    @given(source=st.text(alphabet=_alphabet, max_size=120))
    def test_tokenize_total(self, source):
        try:
            tokens = tokenize(source)
        except LexError:
            return
        assert tokens[-1].kind == "EOF"

    @settings(max_examples=100, deadline=None)
    @given(source=st.text(max_size=60))
    def test_tokenize_arbitrary_unicode(self, source):
        try:
            tokenize(source)
        except LexError:
            pass


class TestParserFuzz:
    @settings(max_examples=200, deadline=None)
    @given(source=st.text(alphabet=_alphabet, max_size=120))
    def test_parse_never_crashes_on_soup(self, source):
        try:
            parse(source)
        except FRONTEND_ERRORS:
            pass

    @settings(max_examples=200, deadline=None)
    @given(source=_token_soup)
    def test_parse_never_crashes_on_token_soup(self, source):
        try:
            parse(source)
        except FRONTEND_ERRORS:
            pass

    @settings(max_examples=100, deadline=None)
    @given(source=_token_soup)
    def test_accepted_programs_are_analysable(self, source):
        """Anything the front end accepts, the analyses handle
        (possibly via the hybrid fallback)."""
        try:
            program = parse(source)
        except FRONTEND_ERRORS:
            return
        from repro.core.hybrid import analyze_hybrid

        result = analyze_hybrid(program)
        for site in program.applications[:3]:
            result.may_call(site)
