"""Tests for the Section 6 datatype node congruences (≈1 and ≈2)."""

import pytest

from repro.cfa.standard import analyze_standard
from repro.core.datatypes import (
    BaseTypeCongruence,
    TypeCongruence,
    make_congruence,
)
from repro.core.lc import build_subtransitive_graph
from repro.core.queries import SubtransitiveCFA, analyze_subtransitive
from repro.lang import parse
from repro.types.infer import infer_types

from tests.helpers import assert_label_subset

FL = "datatype fl = FNil | FCons of (int -> int) * fl;\n"
DT = "datatype intlist = Nil | Cons of int * intlist;\n"


def run_with(src, congruence_name):
    prog = parse(src)
    inference = infer_types(prog)
    congruence = make_congruence(congruence_name)
    sub = build_subtransitive_graph(
        prog, congruence=congruence, inference=inference
    )
    return prog, SubtransitiveCFA(sub)


class TestRegistry:
    def test_known_names(self):
        assert isinstance(make_congruence("type"), TypeCongruence)
        assert isinstance(
            make_congruence("base-and-type"), BaseTypeCongruence
        )

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_congruence("fancy")

    def test_type_congruences_require_inference(self):
        # The engine itself refuses a typed congruence without types;
        # the build_subtransitive_graph wrapper infers them
        # automatically instead.
        from repro.core.lc import LCEngine

        prog = parse(DT + "Nil")
        with pytest.raises(ValueError):
            LCEngine(
                prog, congruence=make_congruence("type"), inference=None
            )
        sub = build_subtransitive_graph(
            prog, congruence=make_congruence("type"), inference=None
        )
        assert sub.stats.total_nodes > 0


class TestSoundness:
    """Both congruences over-approximate standard CFA."""

    SOURCES = [
        FL + (
            "letrec map = fn[map] f => fn[map2] xs => case xs of "
            "FNil => FNil | FCons(h, t) => FCons(f h, map f t) end in "
            "case map (fn[wrap] g => g) "
            "(FCons(fn[inc] x => x + 1, FCons(fn[dbl] y => y * 2, FNil))) of "
            "FNil => fn[zero] a => a | FCons(h, t) => h end"
        ),
        DT + (
            "letrec sum = fn[sum] xs => case xs of Nil => 0 "
            "| Cons(h, t) => h + sum t end in sum (Cons(1, Cons(2, Nil)))"
        ),
    ]

    @pytest.mark.parametrize("src", SOURCES)
    @pytest.mark.parametrize("cong", ["type", "base-and-type"])
    def test_congruence_superset_of_standard(self, src, cong):
        prog, sub = run_with(src, cong)
        std = analyze_standard(prog)
        assert_label_subset(prog, std, sub, cong)

    @pytest.mark.parametrize("src", SOURCES)
    def test_c2_at_least_as_precise_as_c1(self, src):
        prog1, sub1 = run_with(src, "type")
        prog2, sub2 = run_with(src, "base-and-type")
        # Compare by nid (same source parses identically).
        for n1, n2 in zip(prog1.nodes, prog2.nodes):
            assert sub2.labels_of(n2) <= sub1.labels_of(n1)


class TestAccuracyDifference:
    def test_paper_car_example_under_c1(self):
        # Section 6: "if we use ≈1 ... there would be edges to both 1
        # and 2 from car(e)" — with functions instead of ints so
        # labels are observable: two lists of the same type conflate.
        src = FL + (
            "let l1 = FCons(fn[one] x => x, FNil) in "
            "let l2 = FCons(fn[two] y => y, FNil) in "
            "case l1 of FNil => fn[z] a => a | FCons(h, t) => h end"
        )
        prog1, sub1 = run_with(src, "type")
        # Under ≈1, l1 and l2 share the class node, so h sees both.
        assert {"one", "two"} <= sub1.labels_of_var("h")

    def test_paper_car_example_under_c2(self):
        src = FL + (
            "let l1 = FCons(fn[one] x => x, FNil) in "
            "let l2 = FCons(fn[two] y => y, FNil) in "
            "case l1 of FNil => fn[z] a => a | FCons(h, t) => h end"
        )
        prog2, sub2 = run_with(src, "base-and-type")
        # ≈2 keeps distinct base nodes apart: h sees only 'one'.
        assert sub2.labels_of_var("h") == {"one"}

    # A nested deconstruction: take the head, the tail, and the
    # tail's head of a two-element function list.
    NESTED = FL + (
        "let l = FCons(fn[one] x => x, FCons(fn[two] y => y, FNil)) in "
        "case l of FNil => fn[z] a => a "
        "| FCons(h, t) => case t of FNil => fn[z2] c => c "
        "| FCons(h2, t2) => h2 end end"
    )

    def test_c2_keeps_positions_c1_loses(self):
        # ≈1 merges every fl-typed node into one class, so both list
        # positions conflate; ≈2 keys classes on the base node and
        # keeps them apart here — "strictly more accurate".
        prog1, sub1 = run_with(self.NESTED, "type")
        assert {"one", "two"} <= sub1.labels_of_var("h")
        assert {"one", "two"} <= sub1.labels_of_var("h2")
        prog2, sub2 = run_with(self.NESTED, "base-and-type")
        assert sub2.labels_of_var("h") == {"one"}
        assert sub2.labels_of_var("h2") == {"two"}

    def test_c2_terminates_where_exact_diverges(self):
        # A recursive traversal makes the exact node grammar build
        # unbounded deconstructor towers; ≈2 collapses them (the whole
        # point of Section 6).
        src = FL + (
            "letrec last = fn[last] xs => case xs of "
            "FNil => fn[z] a => a "
            "| FCons(h, t) => case t of FNil => h "
            "| FCons(h2, t2) => last t end end in "
            "last (FCons(fn[one] x => x, FCons(fn[two] y => y, FNil)))"
        )
        prog = parse(src)
        from repro.errors import AnalysisBudgetExceeded

        with pytest.raises(AnalysisBudgetExceeded):
            build_subtransitive_graph(
                prog,
                congruence=make_congruence("exact"),
                inference=infer_types(prog),
                node_budget=50 * prog.size,
            )
        prog2, sub2 = run_with(src, "base-and-type")
        std = analyze_standard(prog2)
        assert_label_subset(prog2, std, sub2, "≈2 on recursion")

    def test_class_node_counts_c1_coarser(self):
        src = self_src = FL + (
            "let l1 = FCons(fn[one] x => x, FNil) in "
            "let l2 = FCons(fn[two] y => y, FNil) in "
            "case l1 of FNil => fn[z] a => a | FCons(h, t) => h end"
        )
        prog1, sub1 = run_with(src, "type")
        prog2, sub2 = run_with(src, "base-and-type")
        assert (
            sub1.sub.stats.total_nodes <= sub2.sub.stats.total_nodes
        )


class TestDefaultSelection:
    def test_datatype_programs_get_congruence_automatically(self):
        src = DT + (
            "letrec len = fn[len] xs => case xs of Nil => 0 "
            "| Cons(h, t) => 1 + len t end in len (Cons(1, Nil))"
        )
        prog = parse(src)
        sub = analyze_subtransitive(prog)  # must terminate
        std = analyze_standard(prog)
        assert_label_subset(prog, std, sub, "auto")

    def test_datatype_free_programs_run_exact(self):
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        sub = analyze_subtransitive(prog)
        std = analyze_standard(prog)
        for node in prog.nodes:
            assert sub.labels_of(node) == std.labels_of(node)
