"""Correctness of the semi-naive delta engine behind the daemon.

The contract under test (docs/DAEMON.md): after **every** mutation the
warm graph's ``repro.result/1`` envelope is byte-identical to a cold
analysis of the project's rendered source, and the graph passes the
full sanitizer. Fallbacks are allowed (the state is rebuilt by replay)
but must be tagged with a reason from ``FALLBACK_REASONS``.

Lint findings carry source positions, and warm per-definition parses
number lines from 1 while the cold rendered chain shifts them — so
lint output is compared byte-identical against a *fresh replay*
``ProjectAnalysis`` (same wiring, same positions) and
modulo-positions against the true cold run.
"""

import json

import pytest

from repro.daemon import FALLBACK_REASONS, ProjectAnalysis
from repro.errors import ScopeError
from repro.export import result_to_dict
from repro.serve.worker import _lint_section


def cold_envelope(pa):
    cfa = ProjectAnalysis.cold_cfa(
        pa.render_source(), graph_backend=pa.graph_backend
    )
    return result_to_dict(cfa)


def replay_of(pa):
    fresh = ProjectAnalysis(graph_backend=pa.graph_backend)
    for entry in pa.defs:
        fresh.define(entry.name, entry.source)
    return fresh


def strip_positions(section):
    doc = json.loads(json.dumps(section))
    findings = doc["findings"]
    for finding in findings:
        finding["line"] = None
        finding["column"] = None
    doc["findings"] = sorted(
        findings, key=lambda f: (f["rule"], f.get("nid") or 0, f["message"])
    )
    return doc


def check_exact(pa):
    """The full per-mutation contract."""
    warm = json.dumps(pa.envelope(), indent=2, sort_keys=True)
    cold = json.dumps(cold_envelope(pa), indent=2, sort_keys=True)
    assert warm == cold
    report = pa.sanitize()
    assert report["ok"], report["violations"]
    fresh = replay_of(pa)
    assert json.dumps(pa.lint(), sort_keys=True) == json.dumps(
        fresh.lint(), sort_keys=True
    )
    cold_cfa = ProjectAnalysis.cold_cfa(
        pa.render_source(), graph_backend=pa.graph_backend
    )
    cold_lint = _lint_section(cold_cfa.program, cold_cfa)
    assert json.dumps(
        strip_positions(pa.lint()), sort_keys=True
    ) == json.dumps(strip_positions(cold_lint), sort_keys=True)


@pytest.fixture(params=["object", "csr"])
def backend(request):
    return request.param


class TestDefineAppend:
    def test_single_definition(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        report = pa.define("id", "fn x => x")
        assert report["delta"] is True
        assert report["version"] == 1
        check_exact(pa)

    def test_chained_definitions(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("id", "fn x => x")
        pa.define("use", "id (fn[l1] y => y)")
        check_exact(pa)
        assert pa.query_name("use") == {"name": "use", "labels": ["l1"]}

    def test_letrec_definition(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("loop", "fn[loop] x => loop x")
        assert pa.defs[0].recursive
        check_exact(pa)


class TestRedefine:
    def test_redefine_leaf(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn p => p")
        pa.define("b", "a a")
        report = pa.define("b", "a (a a)")
        assert report["delta"] is True
        assert report["retracted_edges"] > 0
        check_exact(pa)

    def test_redefine_middle_with_self_application(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("id", "fn x => x")
        pa.define("use", "id id")
        report = pa.define("id", "fn z => z z")
        assert report["delta"] is True
        assert report["retracted_close_edges"] > 0
        check_exact(pa)

    def test_letrec_to_let_flip(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("f", "fn[f0] x => f x")
        assert pa.defs[0].recursive
        report = pa.define("f", "fn[f1] x => x")
        assert not pa.defs[0].recursive
        assert report["delta"] is True
        check_exact(pa)

    def test_same_shape_redefine_splices_without_reindex(self, backend):
        # Equal node counts take the in-place splice fast path; the
        # result must still be cold-exact on every surface.
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn[a0] p => p")
        pa.define("b", "a (fn[b0] q => q)")
        program_before = pa.program
        report = pa.define("b", "a (fn[b1] r => r)")
        assert report["delta"] is True
        # The fast path splices into the live Program; the slow path
        # would have replaced the object wholesale.
        assert pa.program is program_before
        check_exact(pa)
        assert pa.query_name("b")["labels"] == ["b1"]

    def test_same_shape_label_collision_uses_slow_path(self, backend):
        # Duplicating another definition's label is a genuine error;
        # the splice guard must route it to the re-indexing path,
        # which rejects it atomically.
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn[dup] p => p")
        pa.define("b", "fn[b0] q => q")
        with pytest.raises(ScopeError, match="dup"):
            pa.define("b", "fn[dup] q => q")
        check_exact(pa)

    def test_version_bumps_on_every_mutation(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn x => x")
        pa.define("a", "fn y => y")
        pa.define("b", "a")
        pa.undefine("b")
        assert pa.version == 4


class TestUndefine:
    def test_undefine_retracts_everything(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("id", "fn x => x")
        pa.define("use", "id id")
        report = pa.undefine("use")
        assert report["delta"] is True
        assert report["retracted_edges"] > 0
        assert [d.name for d in pa.defs] == ["id"]
        check_exact(pa)

    def test_undefine_referenced_is_rejected_pre_mutation(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn x => x")
        pa.define("b", "a a")
        version = pa.version
        with pytest.raises(ScopeError, match="reference"):
            pa.undefine("a")
        assert pa.version == version
        check_exact(pa)

    def test_undefine_unknown_is_rejected(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        with pytest.raises(ScopeError, match="unknown"):
            pa.undefine("ghost")

    def test_define_after_undefine_is_fresh(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("f", "fn[f0] x => x")
        pa.undefine("f")
        pa.define("f", "fn[f1] y => y")
        check_exact(pa)
        assert pa.query_name("f")["labels"] == ["f1"]


class TestFallbacks:
    def test_rename_shift_falls_back_exactly(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("a", "fn t => t")
        pa.define("b", "fn t => a t")
        # Redefining `a` to bind `t` twice shifts the fresh name the
        # later definition's `t` renames to — not delta-safe.
        report = pa.define("a", "fn t => fn t => t")
        assert report["delta"] is False
        assert report["delta_fallback_reason"] == "rename-shift"
        assert pa.fallbacks["rename-shift"] == 1
        check_exact(pa)

    def test_node_budget_fallback_reason_is_known(self):
        assert set(FALLBACK_REASONS) == {
            "rename-shift",
            "node-budget",
            "internal-error",
        }

    def test_fallback_counters_start_zeroed(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        assert pa.fallbacks == {reason: 0 for reason in FALLBACK_REASONS}


class TestRenderedSource:
    def test_rendering_parses_back_to_the_same_program(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("id", "fn x => x")
        pa.define("use", "id (fn[l1] y => y)")
        source = pa.render_source()
        assert "let id =" in source
        assert source.endswith("()\n")
        check_exact(pa)

    def test_recursive_definitions_render_as_letrec(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("loop", "fn[loop] x => loop x")
        assert "letrec loop =" in pa.render_source()


class TestQueries:
    def test_query_label(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        pa.define("id", "fn[idl] x => x")
        pa.define("use", "id id")
        result = pa.query_label("idl")
        assert result["label"] == "idl"
        assert result["nids"]

    def test_query_unknown_name_raises(self, backend):
        pa = ProjectAnalysis(graph_backend=backend)
        with pytest.raises(ScopeError):
            pa.query_name("ghost")
