"""Tests for the bounded-type linearity auditor (repro.flow.audit).

The auditor is the static pre-flight check of the Proposition 3/4
preconditions: the cubic family must audit as bounded (it lives in
P_7), the let-polymorphic doubling family must be flagged (typeable
but with Θ(2^n) type trees), and untypeable programs must forecast the
hybrid driver's "inference" fallback.
"""

import pytest

from repro.core.hybrid import HYBRID_BUDGET_FACTOR, analyze_hybrid
from repro.core.lc import build_subtransitive_graph
from repro.flow.audit import (
    DEFAULT_SIZE_THRESHOLD,
    audit_linearity,
    audit_section,
)
from repro.lang import parse
from repro.workloads.cubic import (
    make_cubic_program,
    make_unbounded_program,
    make_unbounded_source,
)


class TestBoundedVerdicts:
    def test_cubic_family_is_bounded(self):
        audit = audit_linearity(make_cubic_program(24))
        assert audit.typeable
        assert audit.bounded
        # The family's types stay constant-size in n (the paper says
        # P_7 for its measure; ours counts the curried `(bs b_i) f_i`
        # monotypes too and lands at 15 — still independent of n).
        assert audit.max_type_size == audit_linearity(
            make_cubic_program(48)
        ).max_type_size
        assert audit.forecast is None

    def test_cubic_prediction_within_budget(self):
        program = make_cubic_program(24)
        audit = audit_linearity(program)
        assert audit.node_budget == HYBRID_BUDGET_FACTOR * max(
            program.size, 16
        )
        assert audit.predicted_nodes <= audit.node_budget

    def test_unbounded_family_is_flagged(self):
        audit = audit_linearity(make_unbounded_program(8))
        assert audit.typeable  # typeable, yet outside every P_k
        assert not audit.bounded
        assert audit.max_type_size > DEFAULT_SIZE_THRESHOLD
        assert audit.forecast == "budget"

    def test_unbounded_source_agrees_with_builder(self):
        built = audit_linearity(make_unbounded_program(8))
        parsed = audit_linearity(parse(make_unbounded_source(8)))
        assert parsed.typeable == built.typeable
        assert parsed.bounded == built.bounded
        assert parsed.forecast == built.forecast

    def test_untypeable_program_forecasts_inference(self):
        # Self-application defeats Hindley-Milner inference.
        audit = audit_linearity(parse("fn[w] x => x x"))
        assert not audit.typeable
        assert not audit.bounded
        assert audit.max_type_size is None
        assert audit.predicted_nodes is None
        assert audit.forecast == "inference"

    def test_type_size_doubles_per_generation(self):
        sizes = [
            audit_linearity(make_unbounded_program(n)).max_type_size
            for n in (4, 6, 8)
        ]
        # t_n has size 2^(n+2) + ... — each extra generation doubles.
        assert sizes[1] > 2 * sizes[0]
        assert sizes[2] > 2 * sizes[1]

    def test_render_mentions_forecast(self):
        audit = audit_linearity(make_unbounded_program(8))
        assert "budget" in audit.render()
        clean = audit_linearity(make_cubic_program(4))
        assert "forecast" not in clean.render()


class TestAuditSection:
    def test_section_without_analysis(self):
        section = audit_section(make_cubic_program(4))
        assert section["actual"] is None
        assert section["within_budget"] is None
        assert section["bounded"] is True

    def test_section_with_analysis(self):
        program = make_cubic_program(8)
        sub = build_subtransitive_graph(program)
        section = audit_section(program, sub)
        actual = section["actual"]
        assert actual["nodes"] == sub.stats.total_nodes
        assert actual["edges"] == sub.stats.total_edges
        assert actual["demanded"] == sub.stats.demanded_nodes
        assert section["within_budget"] is True

    def test_section_with_hybrid_result(self):
        program = make_cubic_program(4)
        section = audit_section(program, analyze_hybrid(program))
        assert section["actual"] is not None
        assert section["within_budget"] is True

    def test_section_is_deterministic(self):
        program = make_cubic_program(4)
        first = audit_section(program, build_subtransitive_graph(program))
        second = audit_section(
            program, build_subtransitive_graph(program)
        )
        assert first == second

    def test_section_is_json_safe(self):
        import json

        section = audit_section(make_cubic_program(4))
        json.dumps(section, sort_keys=True)


class TestThresholdKnob:
    def test_tight_threshold_flags_cubic(self):
        audit = audit_linearity(make_cubic_program(8), size_threshold=2)
        assert audit.typeable
        assert not audit.bounded
        # Threshold only affects boundedness, not the budget forecast.
        assert audit.forecast is None

    def test_inference_reuse(self):
        from repro.types import infer_types

        program = make_cubic_program(4)
        inference = infer_types(program)
        audit = audit_linearity(program, inference=inference)
        assert audit.bounded
