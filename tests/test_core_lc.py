"""Unit tests for the LC' engine: build edges, demand-driven closure,
statistics, and the paper's Section 3 transitions."""

import pytest

from repro.core.lc import LCEngine, build_subtransitive_graph
from repro.core.nodes import NodeFactory
from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse
from repro.lang.ast import App, Lam


def build(src, **kwargs):
    prog = parse(src)
    return prog, build_subtransitive_graph(prog, **kwargs)


class TestBuildEdges:
    def test_abs1_variable_to_dom(self):
        prog, sub = build("fn[f] x => x")
        lam_node = sub.node_of(prog.root)
        x = sub.node_of_var("x")
        dom = lam_node.ops[("dom",)]
        assert sub.graph.has_edge(x, dom)

    def test_abs2_ran_to_body(self):
        prog, sub = build("fn[f] x => x")
        lam_node = sub.node_of(prog.root)
        ran = lam_node.ops[("ran",)]
        body = sub.node_of(prog.root.body)
        assert sub.graph.has_edge(ran, body)

    def test_app1_dom_to_argument(self):
        prog, sub = build("(fn[f] x => x) (fn[g] y => y)")
        fn_node = sub.node_of(prog.root.fn)
        dom = fn_node.ops[("dom",)]
        arg = sub.node_of(prog.root.arg)
        assert sub.graph.has_edge(dom, arg)

    def test_app2_application_to_ran(self):
        prog, sub = build("(fn[f] x => x) (fn[g] y => y)")
        fn_node = sub.node_of(prog.root.fn)
        ran = fn_node.ops[("ran",)]
        assert sub.graph.has_edge(sub.node_of(prog.root), ran)

    def test_letrec_edges(self):
        prog, sub = build("letrec f = fn[f] x => x in f 1")
        f_var = sub.node_of_var("f")
        bound = sub.node_of(prog.root.bound)
        assert sub.graph.has_edge(f_var, bound)
        assert sub.graph.has_edge(
            sub.node_of(prog.root), sub.node_of(prog.root.body)
        )

    def test_variable_occurrence_edge(self):
        prog, sub = build("let v = fn[f] x => x in v")
        occurrence = prog.root.body
        assert sub.graph.has_edge(
            sub.node_of(occurrence), sub.node_of_var("v")
        )

    def test_rule_application_counts(self):
        prog, sub = build("(fn[f] x => x) (fn[g] y => y)")
        rules = sub.stats.rule_applications
        assert rules["ABS-1"] == 2
        assert rules["ABS-2"] == 2
        assert rules["APP-1"] == 1
        assert rules["APP-2"] == 1


class TestCloseBehaviour:
    def test_paper_reachability(self):
        # The Section 3 LC example: the whole program reaches \z'.z'.
        prog, sub = build("(fn[f] x => x x) (fn[g] y => y)")
        from repro.graph.reachability import reaches

        assert reaches(
            sub.graph,
            sub.node_of(prog.root),
            sub.node_of(prog.abstraction("g")),
        )

    def test_demand_driven_no_spurious_nodes(self):
        # An unused function's dom/ran towers are never explored
        # beyond depth one.
        prog, sub = build("let unused = fn[u] x => x in fn[main] y => y")
        deep = [
            n
            for n in sub.factory.nodes
            if n.kind == "op" and n.depth > 1
        ]
        assert deep == []

    def test_close_phase_counts_separated(self):
        prog, sub = build("(fn[f] x => x x) (fn[g] y => y)")
        stats = sub.stats
        assert stats.build_nodes > 0
        assert stats.close_nodes >= 0
        assert stats.total_nodes == len(sub.factory.nodes)
        assert stats.total_edges == sub.graph.edge_count

    def test_closure_rules_fired(self):
        prog, sub = build("(fn[f] x => x x) (fn[g] y => y)")
        rules = sub.stats.rule_applications
        assert rules["CLOSE-COV"] > 0
        assert rules["CLOSE-CONTRA"] > 0

    def test_demanded_nodes_counted(self):
        prog, sub = build("(fn[f] x => x) (fn[g] y => y)")
        assert sub.stats.demanded_nodes > 0


class TestBudget:
    def test_untyped_self_application_trips_budget(self):
        prog = parse("(fn[w] x => x x) (fn[w2] y => y y)")
        with pytest.raises(AnalysisBudgetExceeded):
            build_subtransitive_graph(prog, node_budget=200)

    def test_budget_error_carries_numbers(self):
        prog = parse("(fn[w] x => x x) (fn[w2] y => y y)")
        with pytest.raises(AnalysisBudgetExceeded) as excinfo:
            build_subtransitive_graph(prog, node_budget=100)
        assert excinfo.value.budget == 100
        assert excinfo.value.used > 100

    def test_generous_budget_suffices_for_typed_programs(self):
        prog = parse("(fn[f] x => x x) (fn[g] y => y)")
        sub = build_subtransitive_graph(prog, node_budget=10_000)
        assert sub.stats.total_nodes < 100


class TestLinearityOnCubicFamily:
    def test_nodes_and_edges_grow_linearly(self):
        from repro.workloads.cubic import make_cubic_program

        sizes = {}
        for n in (10, 20, 40):
            sub = build_subtransitive_graph(make_cubic_program(n))
            sizes[n] = (sub.stats.total_nodes, sub.stats.total_edges)
        # Doubling n roughly doubles nodes and edges (ratio < 2.5).
        for small, large in ((10, 20), (20, 40)):
            for i in range(2):
                ratio = sizes[large][i] / sizes[small][i]
                assert 1.5 < ratio < 2.5, (small, large, sizes)

    def test_close_constant_is_small(self):
        # The paper: close-phase nodes are "typically no more than"
        # the build-phase nodes.
        from repro.workloads.cubic import make_cubic_program

        sub = build_subtransitive_graph(make_cubic_program(30))
        assert sub.stats.close_nodes <= 2 * sub.stats.build_nodes
