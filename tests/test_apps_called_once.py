"""Tests for the called-once analysis (paper abstract, item 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.called_once import called_once
from repro.core.lc import build_subtransitive_graph
from repro.core.queries import SubtransitiveCFA
from repro.lang import parse
from repro.workloads.generators import random_typed_program


class TestClassification:
    def test_called_once(self):
        prog = parse("(fn[f] x => x) 1")
        result = called_once(prog)
        assert result.classify("f") == "once"
        assert result.unique_site("f") is prog.applications[0]

    def test_never_called(self):
        prog = parse("let dead = fn[dead] x => x in 0")
        result = called_once(prog)
        assert result.classify("dead") == "never"
        assert "dead" in result.never_called

    def test_called_from_two_sites(self):
        src = "let f = fn[f] x => x in (f 1, f 2)"
        prog = parse(src)
        result = called_once(prog)
        assert result.classify("f") == "many"
        assert result.unique_site("f") is None

    def test_one_site_reached_by_flow(self):
        # g is called once, through a variable.
        src = "let g = fn[g] x => x in let h = g in h 1"
        prog = parse(src)
        result = called_once(prog)
        assert result.classify("g") == "once"

    def test_escaping_function_counted_per_site(self):
        # f flows to a single application site via the higher-order
        # call, plus the site applying call itself.
        src = (
            "let call = fn[call] f => f 1 in "
            "call (fn[inner] x => x)"
        )
        prog = parse(src)
        result = called_once(prog)
        assert result.classify("inner") == "once"
        assert result.classify("call") == "once"

    def test_shared_site_both_once(self):
        # Two functions, one site each reaching the same site: both
        # are called-once even though the site is polymorphic.
        src = (
            "let pick = if true then fn[a] x => x else fn[b] y => y in "
            "pick 1"
        )
        prog = parse(src)
        result = called_once(prog)
        assert result.classify("a") == "once"
        assert result.classify("b") == "once"
        assert result.unique_site("a") is result.unique_site("b")

    def test_recursive_function_many(self):
        # A recursive function is called from its external site and
        # its internal recursive site.
        src = (
            "letrec go = fn[go] n => if n < 1 then 0 else go (n - 1) "
            "in go 3"
        )
        prog = parse(src)
        result = called_once(prog)
        assert result.classify("go") == "many"

    def test_unknown_label_raises(self):
        from repro.errors import ScopeError

        prog = parse("fn[f] x => x")
        with pytest.raises(ScopeError):
            called_once(prog).classify("ghost")


class TestInlineCandidates:
    def test_candidates_listing(self):
        src = "let f = fn[f] x => x in f 1"
        prog = parse(src)
        result = called_once(prog)
        candidates = result.inline_candidates()
        assert len(candidates) == 1
        lam, site = candidates[0]
        assert lam.label == "f"
        assert site is prog.applications[0]


class TestAgainstExactOracle:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_matches_exhaustive_count(self, seed):
        prog = random_typed_program(seed, fuel=18)
        sub = build_subtransitive_graph(prog)
        exact = SubtransitiveCFA(sub)
        result = called_once(prog, sub=sub)
        for lam in prog.abstractions:
            sites = [
                s
                for s in prog.applications
                if lam.label in exact.may_call(s)
            ]
            expected = (
                "never"
                if not sites
                else "once" if len(sites) == 1 else "many"
            )
            assert result.classify(lam.label) == expected, (
                seed,
                lam.label,
            )
