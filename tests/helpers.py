"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

from typing import Iterable

from repro.cfa.base import CFAResult
from repro.lang.ast import Program

#: Small well-typed programs covering every language feature; many
#: tests sweep over all of them.
SAMPLE_SOURCES = {
    "identity": "fn[id] x => x",
    "apply_id": "(fn[id] x => x) (fn[one] y => y)",
    "self_via_arg": "(fn[f] x => x x) (fn[g] y => y)",
    "let_poly": "let id = fn[id] x => x in (id id) (fn[k] z => z)",
    "letrec_loop": (
        "letrec go = fn[go] n => if n < 1 then 0 else go (n - 1) "
        "in go 3"
    ),
    "records": (
        "let p = (fn[a] x => x + 1, fn[b] y => y * 2) in "
        "(#1 p) ((#2 p) 3)"
    ),
    "conditional": (
        "let f = if true then fn[t] x => x + 1 else fn[e] y => y - 1 "
        "in f 10"
    ),
    "datatype_map": """
        datatype intlist = Nil | Cons of int * intlist;
        letrec map = fn[map] f => fn[map2] xs =>
          case xs of
            Nil => Nil
          | Cons(h, t) => Cons(f h, map f t)
          end
        in map (fn[inc] x => x + 1) (Cons(1, Cons(2, Nil)))
    """,
    "refs": (
        "let c = ref (fn[a] x => x + 1) in "
        "let u = c := (fn[b] y => y * 2) in (!c) 5"
    ),
    "effects": (
        "let f = fn[noisy] x => print x in "
        "let g = fn[quiet] y => y + 1 in f (g 1)"
    ),
    "higher_order": (
        "let compose = fn[compose] f => fn[c2] g => fn[c3] x => f (g x) in "
        "let inc = fn[inc] a => a + 1 in "
        "let dbl = fn[dbl] b => b * 2 in "
        "compose inc dbl 7"
    ),
}


def sample_programs() -> Iterable:
    """(name, Program) pairs for all samples."""
    from repro.lang import parse

    for name, source in SAMPLE_SOURCES.items():
        yield name, parse(source)


def assert_same_label_sets(
    program: Program, left: CFAResult, right: CFAResult, context: str = ""
) -> None:
    """Assert that two analyses agree on every occurrence."""
    for node in program.nodes:
        a = left.labels_of(node)
        b = right.labels_of(node)
        assert a == b, (
            f"{context}: label sets differ at node #{node.nid} "
            f"({type(node).__name__}): {sorted(a)} vs {sorted(b)}"
        )


def assert_label_subset(
    program: Program, small: CFAResult, big: CFAResult, context: str = ""
) -> None:
    """Assert ``small``'s label sets are pointwise contained in
    ``big``'s."""
    for node in program.nodes:
        a = small.labels_of(node)
        b = big.labels_of(node)
        assert a <= b, (
            f"{context}: node #{node.nid} ({type(node).__name__}): "
            f"{sorted(a)} not within {sorted(b)}"
        )
