"""Tests for the bench harness utilities."""

import math

import pytest

from repro.bench.harness import (
    Table,
    fit_exponent,
    geometric_sizes,
    lc_row,
    time_call,
)
from repro.workloads.cubic import make_cubic_program


class TestFitExponent:
    def test_linear_series(self):
        xs = [10, 20, 40, 80]
        ys = [3.0 * x for x in xs]
        assert abs(fit_exponent(xs, ys) - 1.0) < 1e-9

    def test_quadratic_series(self):
        xs = [10, 20, 40, 80]
        ys = [0.5 * x * x for x in xs]
        assert abs(fit_exponent(xs, ys) - 2.0) < 1e-9

    def test_cubic_series(self):
        xs = [10, 20, 40]
        ys = [x**3 for x in xs]
        assert abs(fit_exponent(xs, ys) - 3.0) < 1e-9

    def test_noisy_series_close(self):
        xs = [10, 20, 40, 80, 160]
        ys = [x * (1 + 0.05 * (-1) ** i) for i, x in enumerate(xs)]
        assert abs(fit_exponent(xs, ys) - 1.0) < 0.1

    def test_zero_values_clamped(self):
        assert math.isfinite(fit_exponent([1, 2, 4], [0.0, 0.0, 0.0]))

    def test_errors(self):
        with pytest.raises(ValueError):
            fit_exponent([1], [1])
        with pytest.raises(ValueError):
            fit_exponent([1, 2], [1])
        with pytest.raises(ValueError):
            fit_exponent([3, 3], [1, 2])


class TestGeometricSizes:
    def test_doubling(self):
        assert geometric_sizes(10, 2, 4) == [10, 20, 40, 80]

    def test_fractional_factor(self):
        sizes = geometric_sizes(100, 1.5, 3)
        assert sizes == [100, 150, 225]


class TestTimeCall:
    def test_returns_nonnegative(self):
        assert time_call(lambda: sum(range(100))) >= 0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)


class TestTable:
    def test_render_alignment(self):
        table = Table(["n", "time"], title="demo")
        table.add_row(10, 0.5)
        table.add_row(1000, 12.25)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "time" in lines[1]
        assert len(lines) == 5

    def test_row_arity_checked(self):
        table = Table(["a", "c"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row(0.0000005)
        assert "e" in table.render().splitlines()[-1]


class TestLcRow:
    def test_row_fields(self):
        row = lc_row(make_cubic_program(3), repeat=1)
        assert set(row) == {
            "build_seconds",
            "build_nodes",
            "close_seconds",
            "close_nodes",
            "total_seconds",
            "total_nodes",
            "total_edges",
        }
        assert row["total_nodes"] == row["build_nodes"] + row["close_nodes"]
