"""E2E request correlation: one id, one chain, across every layer.

The tentpole contract of the live-telemetry PR (docs/DAEMON.md): a
``request_id`` minted at the client is threaded through the daemon
verb, the registry, the delta engine and the fused flow scheduler,
and ``repro obs req`` can reassemble the whole story afterwards —
connected (opens with ``request``, closes with ``response``) and
time-ordered, on both graph backends.
"""

import asyncio
import json
import os
import threading

import pytest

from repro.daemon import DaemonClient, DaemonServer
from repro.obs import request_chain, validate_event, validate_telemetry
from repro.obs.live import render_prometheus, render_request


@pytest.fixture(params=["object", "csr"])
def endpoint(request, tmp_path):
    """A live daemon on a temp Unix socket, one per graph backend,
    with the event sink on and the slow-capture threshold at zero
    (every request is "slow", so span profiles are always taken)."""
    path = str(tmp_path / "repro.sock")
    events_path = str(tmp_path / "events.jsonl")
    loop = asyncio.new_event_loop()
    box = {}

    def run():
        from repro.obs.events import EventLog

        asyncio.set_event_loop(loop)
        box["server"] = DaemonServer(
            socket_path=path,
            graph_backend=request.param,
            events=EventLog(sink_path=events_path),
            slow_threshold_s=0.0,
        )
        loop.run_until_complete(box["server"].serve_forever())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    for _ in range(200):
        if os.path.exists(path):
            break
        threading.Event().wait(0.01)
    yield path, events_path, box
    if not box["server"]._shutdown.is_set():
        with DaemonClient(socket_path=path) as client:
            client.shutdown()
    thread.join(timeout=10)


def drive_session(client):
    """define / redefine / lint, returning the per-step request ids."""
    ids = {}
    client.define("demo", "id", "fn x => x")
    ids["define"] = client.last_request_id
    client.define("demo", "use", "id (fn[l1] y => y)")
    client.define("demo", "id", "fn[l2] z => z")
    ids["redefine"] = client.last_request_id
    client.lint("demo")
    ids["lint"] = client.last_request_id
    return ids


class TestRequestCorrelation:
    def test_chains_are_connected_and_ordered(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            ids = drive_session(client)
            events = client.telemetry()["events"]
        for step, request_id in ids.items():
            report = request_chain(events, request_id)
            assert report["connected"], (step, report)
            assert report["ordered"], (step, report)
            assert report["status"] == "ok"
            assert report["events"][0]["kind"] == "request"
            assert report["events"][-1]["kind"] == "response"
            # Human rendering works for every chain.
            assert request_id in render_request(report)

    def test_chain_spans_server_delta_flow(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            ids = drive_session(client)
            events = client.telemetry()["events"]
        redefine = request_chain(events, ids["redefine"])
        assert "server" in redefine["components"]
        assert "delta" in redefine["components"]
        delta = [e for e in redefine["events"] if e["kind"] == "delta"]
        assert len(delta) == 1
        assert delta[0]["op"] == "define" and delta[0]["name"] == "id"
        assert "retracted_edges" in delta[0]
        # The lint verb runs the fused flow sweeps; its chain carries
        # the per-request step totals end to end.
        lint = request_chain(events, ids["lint"])
        assert {"server", "flow"} <= set(lint["components"])
        flow = [e for e in lint["events"] if e["kind"] == "flow"]
        assert any(e["fused"] for e in flow)
        assert all(e["steps"] >= 0 for e in flow)
        response = lint["events"][-1]
        assert response["flow_steps"] == sum(e["steps"] for e in flow)

    def test_ids_never_cross_between_requests(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            ids = drive_session(client)
            events = client.telemetry()["events"]
        seen = {}
        for event in events:
            if event["request_id"] is not None:
                seen.setdefault(event["request_id"], []).append(event)
        # Every correlated event belongs to exactly one request chain,
        # and the session's ids are all distinct.
        assert len(set(ids.values())) == len(ids)
        for request_id, chain in seen.items():
            kinds = [e["kind"] for e in chain]
            assert kinds.count("request") <= 1, (request_id, kinds)
            assert kinds.count("response") <= 1, (request_id, kinds)

    def test_client_chosen_id_is_respected(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            client.request(
                "define",
                project="demo",
                name="f",
                source="fn x => x",
                request_id="my-session-0001",
            )
            assert client.last_request_id == "my-session-0001"
            events = client.telemetry()["events"]
        report = request_chain(events, "my-session-0001")
        assert report["connected"] and report["verb"] == "define"


class TestTelemetryVerb:
    def test_envelope_validates(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            drive_session(client)
            document = client.telemetry()
        validate_telemetry(document)
        assert document["schema"] == "repro.events/1"
        assert document["uptime_s"] >= 0
        assert document["events_emitted"] == len(document["events"])
        histograms = document["metrics"]["histograms"]
        assert histograms["daemon.latency.define"]["count"] == 3
        assert histograms["daemon.latency.lint"]["count"] == 1
        assert histograms["daemon.retractions_per_redefine"]["count"] == 3

    def test_prometheus_format(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            drive_session(client)
            result = client.telemetry(fmt="prometheus")
        assert result["format"] == "prometheus"
        text = result["text"]
        assert "repro_daemon_uptime_seconds" in text
        assert "repro_daemon_latency_define_bucket" in text
        assert 'le="+Inf"' in text
        # The text matches a fresh render of the JSON document.
        with DaemonClient(socket_path=path) as client:
            document = client.telemetry()
        assert render_prometheus(document).splitlines()[0] == \
            text.splitlines()[0]

    def test_slow_capture_at_zero_threshold(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            ids = drive_session(client)
            document = client.telemetry()
        slow = document["slow"]
        assert {entry["request_id"] for entry in slow} >= set(ids.values())
        for entry in slow:
            assert entry["seconds"] >= 0
            assert entry["verb"]
            # The attached span profile is folded-stack formatted.
            assert any(
                line.startswith(f"verb.{entry['verb']}")
                for line in entry["profile"]
            ), entry

    def test_status_uptime_events_hits(self, endpoint):
        path, _, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            drive_session(client)
            status = client.status()
        assert status["uptime_s"] >= 0
        assert status["events_dropped"] == 0
        events = status["events"]
        assert events["emitted"] == events["buffered"] > 0
        (warm,) = status["projects"]["warm"]
        assert warm["project"] == "demo"
        # First define creates (cold), the rest reuse the warm graph.
        assert warm["hits"]["cold"] == 1
        assert warm["hits"]["warm"] >= 3


class TestEventSink:
    def test_sink_mirrors_the_ring_per_request(self, endpoint):
        path, events_path, _ = endpoint
        with DaemonClient(socket_path=path) as client:
            ids = drive_session(client)
            ring = client.telemetry()["events"]
        with open(events_path, "r", encoding="utf-8") as handle:
            sunk = [json.loads(line) for line in handle if line.strip()]
        # The sink is flushed once per finished request, so it holds
        # every event the ring holds up to the last response (the
        # telemetry request itself may still be buffered).
        by_seq = {e["seq"]: e for e in sunk}
        for event in ring:
            if event["request_id"] in set(ids.values()):
                assert by_seq[event["seq"]] == event


class TestSubscribe:
    def test_streaming_tail(self, endpoint):
        path, _, _ = endpoint
        received = []

        def consume():
            with DaemonClient(socket_path=path, timeout=5.0) as sub:
                for event in sub.subscribe(grep="define"):
                    received.append(event)
                    if event["kind"] == "response":
                        break

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        threading.Event().wait(0.2)
        with DaemonClient(socket_path=path) as client:
            client.define("demo", "id", "fn x => x")
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert received, "no events streamed"
        for event in received:
            validate_event(event)
            assert "define" in json.dumps(event)
        assert received[-1]["kind"] == "response"
