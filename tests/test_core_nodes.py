"""Unit tests for the node grammar and factory."""

import pytest

from repro.core.nodes import (
    NodeFactory,
    op_is_contravariant,
    op_is_covariant,
)
from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse


@pytest.fixture()
def factory():
    program = parse("(fn[f] x => x) (fn[g] y => y)")
    return program, NodeFactory(program)


class TestVariance:
    def test_dom_is_contravariant_only(self):
        assert op_is_contravariant(("dom",))
        assert not op_is_covariant(("dom",))

    def test_ran_proj_con_are_covariant_only(self):
        for opkey in [("ran",), ("proj", 1), ("con", "Cons", 2)]:
            assert op_is_covariant(opkey)
            assert not op_is_contravariant(opkey)

    def test_cell_is_invariant(self):
        assert op_is_covariant(("cell",))
        assert op_is_contravariant(("cell",))


class TestInterning:
    def test_expr_nodes_interned(self, factory):
        program, fac = factory
        assert fac.expr_node(program.root) is fac.expr_node(program.root)

    def test_var_nodes_interned(self, factory):
        _, fac = factory
        assert fac.var_node("x") is fac.var_node("x")
        assert fac.var_node("x") is not fac.var_node("y")

    def test_context_distinguishes_instances(self, factory):
        program, fac = factory
        plain = fac.expr_node(program.root)
        instanced = fac.expr_node(program.root, context=(5,))
        assert plain is not instanced
        assert instanced.context == (5,)

    def test_op_nodes_interned_via_registration(self, factory):
        program, fac = factory
        base = fac.expr_node(program.root)
        first = fac.op_node(("dom",), base)
        second = fac.op_node(("dom",), base)
        assert first is second
        assert base.ops[("dom",)] is first

    def test_find_op(self, factory):
        program, fac = factory
        base = fac.expr_node(program.root)
        assert fac.find_op(("ran",), base) is None
        made = fac.op_node(("ran",), base)
        assert fac.find_op(("ran",), base) is made

    def test_members_recorded(self, factory):
        program, fac = factory
        base = fac.expr_node(program.root)
        node = fac.op_node(("dom",), base)
        assert (("dom",), base) in node.members

    def test_on_member_hook_fires(self, factory):
        program, fac = factory
        calls = []
        fac.on_member = lambda node, opkey, inner: calls.append(opkey)
        base = fac.expr_node(program.root)
        fac.op_node(("dom",), base)
        assert calls == [("dom",)]


class TestDepthAndBudget:
    def test_depth_increments(self, factory):
        program, fac = factory
        base = fac.expr_node(program.root)
        dom = fac.op_node(("dom",), base)
        ran = fac.op_node(("ran",), dom)
        assert base.depth == 0
        assert dom.depth == 1
        assert ran.depth == 2

    def test_decon_resets_depth(self):
        program = parse(
            "datatype intlist = Nil | Cons of int * intlist;\nNil"
        )
        fac = NodeFactory(program)
        base = fac.expr_node(program.root)
        dom = fac.op_node(("dom",), base)
        con = fac.op_node(("con", "Cons", 1), dom)
        assert con.depth == 1

    def test_depth_cap_suppresses(self, factory):
        program, _ = factory
        fac = NodeFactory(program, max_depth=2)
        base = fac.expr_node(program.root)
        d1 = fac.op_node(("dom",), base)
        d2 = fac.op_node(("dom",), d1)
        d3 = fac.op_node(("dom",), d2)
        assert d2 is not None
        assert d3 is None
        assert fac.depth_truncations == 1

    def test_node_budget(self, factory):
        program, _ = factory
        fac = NodeFactory(program, node_budget=2)
        fac.expr_node(program.root)
        fac.var_node("x")
        with pytest.raises(AnalysisBudgetExceeded):
            fac.var_node("y")


class TestDescribe:
    def test_expr_node_uses_label_for_abstractions(self, factory):
        program, fac = factory
        lam = program.abstraction("f")
        assert fac.expr_node(lam).describe() == "f"

    def test_expr_node_uses_nid_otherwise(self, factory):
        program, fac = factory
        assert fac.expr_node(program.root).describe() == "e0"

    def test_operator_rendering(self, factory):
        program, fac = factory
        base = fac.expr_node(program.abstraction("f"))
        dom = fac.op_node(("dom",), base)
        ran_of_dom = fac.op_node(("ran",), dom)
        assert ran_of_dom.describe() == "ran(dom(f))"

    def test_context_rendering(self, factory):
        program, fac = factory
        node = fac.var_node("x", context=(3, 4))
        assert node.describe() == "x@3.4"


class TestOpTypes:
    def test_dom_ran_types_follow_function_type(self):
        program = parse("fn[f] x => x + 1")
        from repro.types.infer import infer_types

        fac = NodeFactory(program, inference=infer_types(program))
        base = fac.expr_node(program.root)
        dom = fac.op_node(("dom",), base)
        ran = fac.op_node(("ran",), base)
        assert str(dom.ty) == "int"
        assert str(ran.ty) == "int"

    def test_con_types_come_from_signature(self):
        program = parse(
            "datatype intlist = Nil | Cons of int * intlist;\nNil"
        )
        fac = NodeFactory(program)
        base = fac.expr_node(program.root)
        head = fac.op_node(("con", "Cons", 1), base)
        tail = fac.op_node(("con", "Cons", 2), base)
        assert str(head.ty) == "int"
        assert str(tail.ty) == "intlist"

    def test_unknown_types_are_none(self, factory):
        program, fac = factory
        base = fac.expr_node(program.root)
        assert fac.op_node(("dom",), base).ty is None
