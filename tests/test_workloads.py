"""Tests for the benchmark workload generators."""

import pytest

from repro.cfa.standard import analyze_standard
from repro.core.queries import analyze_subtransitive
from repro.lang import evaluate, parse
from repro.lang.compare import ast_equal
from repro.types.measure import bounded_type_report
from repro.workloads.cubic import make_cubic_program, make_cubic_source
from repro.workloads.generators import (
    make_joinpoint_program,
    random_typed_program,
)
from repro.workloads.synthetic import (
    make_lexgen_like,
    make_life_like,
    make_synthetic_program,
)


class TestCubicFamily:
    def test_size_grows_linearly(self):
        small = make_cubic_program(5).size
        large = make_cubic_program(10).size
        assert 1.7 < large / small < 2.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_cubic_program(0)
        with pytest.raises(ValueError):
            make_cubic_source(0)

    def test_source_and_ast_agree(self):
        ast_prog = make_cubic_program(2)
        src_prog = parse(make_cubic_source(2))
        assert ast_equal(ast_prog.root, src_prog.root)

    def test_family_is_typeable_and_bounded(self):
        report = bounded_type_report(make_cubic_program(8))
        assert report.max_size == 15

    def test_family_evaluates(self):
        prog = make_cubic_program(3)
        assert evaluate(prog).value is None  # unit


class TestJoinpoint:
    def test_parameter_joins_all_sites(self):
        prog = make_joinpoint_program(6)
        cfa = analyze_standard(prog)
        f = prog.abstraction("f")
        assert len(cfa.labels_of_var(f.param)) == 6

    def test_returning_variant_flows_back(self):
        prog = make_joinpoint_program(4, returning=True)
        cfa = analyze_standard(prog)
        # Every call site result sees the whole join.
        site = prog.applications[0]
        assert len(cfa.labels_of(site)) == 4

    def test_non_returning_variant_does_not_flow_back(self):
        prog = make_joinpoint_program(4, returning=False)
        cfa = analyze_standard(prog)
        site = [
            s for s in prog.applications
            if getattr(s.fn, "name", "") == "f"
        ][0]
        assert cfa.labels_of(site) == set()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_joinpoint_program(0)


class TestSynthetic:
    def test_styles_validated(self):
        with pytest.raises(ValueError):
            make_synthetic_program(3, "webserver")

    def test_life_like_scale(self):
        prog = make_life_like()
        assert 1000 <= prog.size <= 2000

    def test_lexgen_like_scale(self):
        prog = make_lexgen_like()
        assert 3000 <= prog.size <= 4500

    def test_both_are_typeable_with_small_types(self):
        for prog in (make_life_like(), make_lexgen_like()):
            report = bounded_type_report(prog)
            assert report.avg_size < 4.0

    def test_life_like_evaluates_and_prints(self):
        result = evaluate(make_life_like(), fuel=2_000_000)
        assert len(result.output) > 0

    def test_lexgen_has_lower_higher_order_density(self):
        life = make_life_like()
        lexgen = make_lexgen_like()
        life_density = len(life.abstractions) / life.size
        lexgen_density = len(lexgen.abstractions) / lexgen.size
        assert lexgen_density < life_density

    def test_analyses_agree_on_life_like(self):
        prog = make_life_like()
        std = analyze_standard(prog)
        sub = analyze_subtransitive(prog)
        for node in prog.nodes:
            assert std.labels_of(node) <= sub.labels_of(node)

    def test_blocks_scale_linearly(self):
        small = make_synthetic_program(5, "life").size
        large = make_synthetic_program(10, "life").size
        assert 1.5 < large / small < 2.5


class TestRandomGenerator:
    def test_deterministic(self):
        a = random_typed_program(7, fuel=15)
        c = random_typed_program(7, fuel=15)
        assert ast_equal(a.root, c.root)

    def test_different_seeds_differ(self):
        a = random_typed_program(1, fuel=15)
        c = random_typed_program(2, fuel=15)
        assert not ast_equal(a.root, c.root)

    def test_feature_toggles(self):
        prog = random_typed_program(
            11, fuel=25, use_datatypes=False, use_refs=False,
            use_effects=False,
        )
        from repro.lang.ast import Assign, Con, Prim, Ref

        for node in prog.nodes:
            assert not isinstance(node, (Con, Ref, Assign))
            if isinstance(node, Prim):
                assert not node.effectful

    def test_fuel_controls_size(self):
        small = random_typed_program(3, fuel=5).size
        large = random_typed_program(3, fuel=60).size
        assert large > small
