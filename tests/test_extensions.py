"""Tests for the optional extensions beyond the paper's core:
dead-code-aware standard CFA and the payoff polyvariance policy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfa.standard import analyze_standard
from repro.core.polyvariant import (
    analyze_polyvariant,
    choose_polyvariant_binders,
)
from repro.lang import parse
from repro.workloads.generators import random_typed_program

from tests.helpers import assert_label_subset


class TestDeadCodeAwareCFA:
    DEAD = (
        "let dead = fn[dead] x => (fn[inner] y => y) (fn[ghost] g => g) "
        "in (fn[live] z => z) (fn[arg] w => w)"
    )

    def test_dead_body_not_analysed(self):
        prog = parse(self.DEAD)
        live = analyze_standard(prog, live_only=True)
        # The application inside the dead function contributes nothing.
        assert live.labels_of_var("y") == set()

    def test_standard_analyses_dead_code(self):
        prog = parse(self.DEAD)
        std = analyze_standard(prog)
        assert std.labels_of_var("y") != set()

    def test_live_result_still_correct_for_live_code(self):
        prog = parse(self.DEAD)
        live = analyze_standard(prog, live_only=True)
        assert live.labels_of(prog.root) == {"arg"}
        assert live.labels_of_var("z") == {"arg"}

    def test_live_subset_of_standard(self):
        prog = parse(self.DEAD)
        assert_label_subset(
            prog,
            analyze_standard(prog, live_only=True),
            analyze_standard(prog),
            "live vs full",
        )

    def test_transitively_reached_bodies_are_analysed(self):
        src = (
            "let f = fn[f] x => x 1 in "
            "let g = fn[g] y => y + 1 in f g"
        )
        prog = parse(src)
        live = analyze_standard(prog, live_only=True)
        # g's body is live because f applies its argument.
        site = prog.abstraction("f").body  # x 1
        assert live.labels_of(site.fn) == {"g"}

    def test_conditionally_dead_function(self):
        # pick never evaluates the else branch dynamically, but the
        # analysis is path-insensitive: both branches are live.
        src = (
            "let pick = if true then fn[a] x => x else fn[b] y => y "
            "in pick 1"
        )
        prog = parse(src)
        live = analyze_standard(prog, live_only=True)
        assert live.labels_of_var("pick") == {"a", "b"}

    def test_work_not_larger_than_standard(self):
        prog = parse(self.DEAD)
        live = analyze_standard(prog, live_only=True)
        std = analyze_standard(prog)
        assert live.work <= std.work

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_live_subset(self, seed):
        prog = random_typed_program(seed, fuel=18)
        assert_label_subset(
            prog,
            analyze_standard(prog, live_only=True),
            analyze_standard(prog),
            f"seed={seed}",
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_runtime_soundness(self, seed):
        from repro.errors import EvaluationError, FuelExhausted
        from repro.lang.eval import evaluate

        prog = random_typed_program(seed, fuel=14)
        try:
            result = evaluate(prog, fuel=4_000)
        except (FuelExhausted, EvaluationError):
            return
        live = analyze_standard(prog, live_only=True)
        for node in prog.nodes:
            assert result.trace.labels_at(node) <= live.labels_of(
                node
            ), (seed, node.nid)


class TestPayoffPolicy:
    SHARED = (
        "let id = fn[id] x => x in "
        "let solo = fn[solo] s => s + 1 in "
        "let r1 = id (fn[a] p => p) in "
        "let r2 = id (fn[b] q => q) in "
        "(r1 1, r2 2, solo 3)"
    )

    def test_payoff_selects_join_points_only(self):
        prog = parse(self.SHARED)
        payoff = choose_polyvariant_binders(prog, policy="payoff")
        # id joins {a, b} across two uses; solo has one use and no join.
        assert payoff == {"id"}

    def test_syntactic_selects_all_functions(self):
        prog = parse(self.SHARED)
        syntactic = choose_polyvariant_binders(prog)
        assert syntactic == {"id", "solo"}

    def test_unknown_policy(self):
        prog = parse(self.SHARED)
        with pytest.raises(ValueError):
            choose_polyvariant_binders(prog, policy="psychic")

    def test_payoff_polyvariant_matches_full_precision_here(self):
        prog = parse(self.SHARED)
        full = analyze_polyvariant(prog)
        cheap = analyze_polyvariant(
            prog, binders=choose_polyvariant_binders(prog, "payoff")
        )
        for node in prog.nodes:
            assert cheap.labels_of(node) == full.labels_of(node)

    def test_payoff_duplicates_fewer_fragments(self):
        prog = parse(self.SHARED)
        full = analyze_polyvariant(prog)
        cheap = analyze_polyvariant(
            prog, binders=choose_polyvariant_binders(prog, "payoff")
        )
        assert (
            cheap.stats.total_nodes <= full.stats.total_nodes
        )
