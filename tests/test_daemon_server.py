"""The daemon front-end: dispatch, registry LRU, and socket E2E."""

import asyncio
import json
import os
import threading

import pytest

from repro.daemon import (
    DaemonClient,
    DaemonError,
    DaemonServer,
    ProjectRegistry,
)
from repro.daemon.protocol import request_record


def dispatch(server, record) -> dict:
    line = (json.dumps(record) + "\n").encode("utf-8")
    return asyncio.run(server.dispatch_line(line))


@pytest.fixture()
def server(tmp_path):
    # Never started: dispatch_line works without a listening socket.
    return DaemonServer(socket_path=str(tmp_path / "repro.sock"))


class TestDispatch:
    def test_define_then_query(self, server):
        response = dispatch(
            server,
            request_record(
                1, "define", project="p", name="id", source="fn[l] x => x"
            ),
        )
        assert response["status"] == "ok"
        assert response["id"] == 1
        assert response["result"]["delta"] is True
        response = dispatch(
            server, request_record(2, "query", project="p", name="id")
        )
        assert response["result"] == {"name": "id", "labels": ["l"]}

    def test_not_json_is_an_error_response(self, server):
        response = asyncio.run(server.dispatch_line(b"{nope\n"))
        assert response["status"] == "error"
        assert "not JSON" in response["error"]
        assert response["id"] is None

    def test_invalid_record_echoes_the_id(self, server):
        record = request_record(9, "define", project="p", name="f")
        response = dispatch(server, record)  # missing source
        assert response["status"] == "error"
        assert response["id"] == 9
        assert "source" in response["error"]

    def test_response_record_is_rejected(self, server):
        from repro.daemon.protocol import ok_response

        response = dispatch(server, ok_response(1, "status", {}))
        assert response["status"] == "error"
        assert "request" in response["error"]

    def test_domain_errors_become_error_responses(self, server):
        response = dispatch(
            server, request_record(4, "undefine", project="p", name="ghost")
        )
        assert response["status"] == "error"
        assert "ghost" in response["error"]

    def test_parse_errors_do_not_poison_the_project(self, server):
        bad = dispatch(
            server,
            request_record(1, "define", project="p", name="f", source="(("),
        )
        assert bad["status"] == "error"
        good = dispatch(
            server,
            request_record(
                2, "define", project="p", name="f", source="fn x => x"
            ),
        )
        assert good["status"] == "ok"

    def test_status_counts_requests_and_deltas(self, server):
        dispatch(
            server,
            request_record(
                1, "define", project="p", name="f", source="fn x => x"
            ),
        )
        response = dispatch(server, request_record(2, "status"))
        counters = response["result"]["metrics"]["counters"]
        assert counters["daemon.requests"] == 2
        assert counters["daemon.deltas"] == 1
        warm = response["result"]["projects"]["warm"]
        assert [p["project"] for p in warm] == ["p"]

    def test_shutdown_sets_the_event(self, server):
        response = dispatch(server, request_record(1, "shutdown"))
        assert response["result"] == {"stopping": True}
        assert server._shutdown.is_set()


class TestRegistry:
    def test_lru_eviction_and_rehydration(self):
        registry = ProjectRegistry(capacity=2)
        registry.get("a").analysis.define("x", "fn[xa] v => v")
        registry.get("b")
        registry.get("c")  # evicts a
        status = registry.status()
        assert [p["project"] for p in status["warm"]] == ["b", "c"]
        assert status["cold"] == ["a"]
        # Touching a again rehydrates its definitions by replay.
        state = registry.get("a")
        assert state.analysis.query_name("x")["labels"] == ["xa"]
        counters = registry.registry.snapshot()["counters"]
        assert counters["daemon.projects.evictions"] >= 2
        assert counters["daemon.projects.rehydrations"] == 1

    def test_locked_projects_are_not_evicted(self):
        registry = ProjectRegistry(capacity=1)
        first = registry.get("a")

        async def hold():
            async with first.lock:
                registry.get("b")

        asyncio.run(hold())
        # `a` was locked when `b` arrived: capacity overshoots
        # rather than snapshotting mid-request.
        assert set(p["project"] for p in registry.status()["warm"]) == {
            "a",
            "b",
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ProjectRegistry(capacity=0)


class TestSocketEndToEnd:
    @pytest.fixture()
    def endpoint(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        loop = asyncio.new_event_loop()
        box = {}

        def run():
            asyncio.set_event_loop(loop)
            box["server"] = DaemonServer(socket_path=path)
            loop.run_until_complete(box["server"].serve_forever())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(200):
            if os.path.exists(path):
                break
            threading.Event().wait(0.01)
        yield path
        if not box["server"]._shutdown.is_set():
            with DaemonClient(socket_path=path) as client:
                client.shutdown()
        thread.join(timeout=10)

    def test_full_session(self, endpoint):
        with DaemonClient(socket_path=endpoint) as client:
            report = client.define("demo", "id", "fn x => x")
            assert report["delta"] is True
            client.define("demo", "use", "id (fn[l1] y => y)")
            assert client.query_name("demo", "use")["labels"] == ["l1"]
            lint = client.lint("demo")
            assert "findings" in lint and "counts" in lint
            assert client.sanitize("demo")["ok"] is True
            envelope = client.analyze("demo")["envelope"]
            assert envelope["schema"] == "repro.result/1"
            source = client.source("demo")["source"]
            assert "let id =" in source
            status = client.status()
            assert status["pid"] == os.getpid()

    def test_error_responses_raise_daemon_error(self, endpoint):
        with DaemonClient(socket_path=endpoint) as client:
            with pytest.raises(DaemonError, match="ghost"):
                client.undefine("demo", "ghost")
            # The connection survives an error response.
            assert client.define("demo", "f", "fn x => x")["version"] == 1

    def test_concurrent_clients_interleave(self, endpoint):
        def worker(project, results, index):
            with DaemonClient(socket_path=endpoint) as client:
                client.define(project, "f", "fn x => x")
                results[index] = client.query_name(project, "f")

        results = [None, None]
        threads = [
            threading.Thread(target=worker, args=(f"p{i}", results, i))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        # `fn x => x` gets the auto label l0 in each project.
        assert all(r == {"name": "f", "labels": ["l0"]} for r in results)

    def test_shutdown_removes_the_socket(self, endpoint):
        with DaemonClient(socket_path=endpoint) as client:
            assert client.shutdown() == {"stopping": True}
        for _ in range(200):
            if not os.path.exists(endpoint):
                break
            threading.Event().wait(0.01)
        assert not os.path.exists(endpoint)
