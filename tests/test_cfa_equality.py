"""Tests for the equality-based (unification) CFA baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfa.equality import analyze_equality
from repro.cfa.standard import analyze_standard
from repro.lang import parse
from repro.workloads.generators import random_typed_program

from tests.helpers import assert_label_subset, sample_programs


class TestBasics:
    def test_simple_application(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        eq = analyze_equality(prog)
        assert "g" in eq.labels_of(prog.root)

    def test_id_at_two_sites_conflates(self):
        # The canonical precision loss: id applied to a and b makes
        # the two arguments flow-equivalent.
        src = (
            "let id = fn[id] x => x in "
            "(id (fn[a] p => p), id (fn[b] q => q))"
        )
        prog = parse(src)
        eq = analyze_equality(prog)
        first, second = prog.root.body.fields
        assert eq.labels_of(first) >= {"a", "b"}
        assert eq.same_class(first, second)

    def test_strictly_less_accurate_example(self):
        # Standard CFA keeps f and g apart here; unification merges
        # them through the shared application position.
        src = (
            "let apply = fn[apply] f => f 1 in "
            "let r1 = apply (fn[a] x => x + 1) in "
            "apply (fn[b] y => y * 2)"
        )
        prog = parse(src)
        std = analyze_standard(prog)
        eq = analyze_equality(prog)
        target = prog.node(prog.root.body.bound.arg.nid)  # fn[a]
        assert std.labels_of_var("f") == {"a", "b"}
        assert eq.labels_of_var("f") >= {"a", "b"}

    def test_terminates_on_untypeable_program(self):
        # Self-application breaks HM but not unification-CFA (no
        # occurs check).
        prog = parse("(fn[w] x => x x) (fn[w2] y => y y)")
        eq = analyze_equality(prog)
        assert "w2" in eq.labels_of(prog.root.arg)

    def test_records_and_datatypes(self):
        src = (
            "datatype fl = FNil | FCons of (int -> int) * fl;\n"
            "case FCons(fn[inc] x => x + 1, FNil) of "
            "FNil => fn[zero] a => a | FCons(h, t) => h end"
        )
        prog = parse(src)
        eq = analyze_equality(prog)
        assert {"inc", "zero"} <= eq.labels_of(prog.root)

    def test_refs(self):
        src = (
            "let c = ref (fn[init] x => x) in "
            "let u = c := (fn[later] y => y) in !c"
        )
        prog = parse(src)
        eq = analyze_equality(prog)
        assert {"init", "later"} <= eq.labels_of(prog.root)


class TestSoundnessOrdering:
    """Equality CFA over-approximates standard CFA pointwise."""

    @pytest.mark.parametrize(
        "name,prog", list(sample_programs()), ids=lambda p: str(p)[:24]
    )
    def test_samples_superset(self, name, prog):
        assert_label_subset(
            prog, analyze_standard(prog), analyze_equality(prog), name
        )

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_superset(self, seed):
        prog = random_typed_program(seed, fuel=18)
        assert_label_subset(
            prog,
            analyze_standard(prog),
            analyze_equality(prog),
            f"seed={seed}",
        )

    def test_loss_is_real_somewhere(self):
        # On at least one sample the inclusion is strict — otherwise
        # the baseline would not be "strictly less accurate".
        strict = False
        for name, prog in sample_programs():
            std = analyze_standard(prog)
            eq = analyze_equality(prog)
            for node in prog.nodes:
                if std.labels_of(node) < eq.labels_of(node):
                    strict = True
        assert strict
