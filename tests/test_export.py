"""Tests for DOT/JSON export."""

import json

import pytest

from repro.core.queries import analyze_subtransitive
from repro.export import (
    RESULT_SCHEMA,
    canonical_json,
    graph_to_dot,
    result_fingerprint,
    result_to_dict,
    result_to_json,
)
from repro.graph.reachability import reachable_from
from repro.lang import parse


@pytest.fixture()
def analysed():
    program = parse("let id = fn[id] x => x in id (fn[g] y => y)")
    return program, analyze_subtransitive(program)


class TestDot:
    def test_valid_skeleton(self, analysed):
        _, cfa = analysed
        dot = graph_to_dot(cfa.sub)
        assert dot.startswith("digraph subtransitive {")
        assert dot.rstrip().endswith("}")

    def test_every_node_and_edge_present(self, analysed):
        _, cfa = analysed
        dot = graph_to_dot(cfa.sub)
        assert dot.count("->") == cfa.graph.edge_count
        for node in cfa.factory.nodes:
            assert f"n{node.uid} [" in dot

    def test_abstractions_highlighted(self, analysed):
        _, cfa = analysed
        dot = graph_to_dot(cfa.sub)
        assert dot.count("doublecircle") == 2  # id and g

    def test_subset_rendering(self, analysed):
        program, cfa = analysed
        start = cfa.factory.expr_node(program.root)
        slice_nodes = reachable_from(cfa.graph, [start])
        dot = graph_to_dot(cfa.sub, nodes=slice_nodes)
        assert dot.count(" [label=") == len(slice_nodes)

    def test_title_escaped(self, analysed):
        _, cfa = analysed
        dot = graph_to_dot(cfa.sub, title='with "quotes"')
        assert '\\"quotes\\"' in dot

    def test_close_edges_dashed_build_edges_solid(self, analysed):
        # Regression: the docstring always promised build/close edge
        # provenance in the rendering, but every edge used to be drawn
        # identically. Close-derived edges are dashed now.
        _, cfa = analysed
        sub = cfa.sub
        assert len(sub.close_edges) > 0
        dot = graph_to_dot(sub)
        assert dot.count("style=dashed") == len(sub.close_edges)
        solid = cfa.graph.edge_count - len(sub.close_edges)
        assert dot.count("->") - dot.count("style=dashed") == solid
        for src, dst in sub.close_edges:
            assert (
                f"n{src.uid} -> n{dst.uid} [style=dashed" in dot
            )


class TestJson:
    def test_document_structure(self, analysed):
        program, cfa = analysed
        document = json.loads(result_to_json(cfa))
        assert set(document) == {
            "schema",
            "engine",
            "program",
            "call_graph",
            "label_flows",
        }
        assert document["schema"] == RESULT_SCHEMA
        assert document["program"]["size"] == program.size

    def test_engine_provenance(self, analysed):
        _, cfa = analysed
        document = json.loads(result_to_json(cfa))
        assert document["engine"] == {
            "name": "subtransitive",
            "driver": "lc",
            "fallback_reason": None,
        }

    def test_engine_provenance_hybrid_fallback(self):
        import repro

        program = parse("(fn[f] x => x) (fn[g] y => y)")
        cfa = repro.analyze(
            program, algorithm="hybrid", node_budget=1
        )
        document = json.loads(result_to_json(cfa))
        assert document["engine"]["driver"] == "hybrid"
        assert document["engine"]["name"] == "standard"
        assert document["engine"]["fallback_reason"] == "budget"

    def test_call_graph_contents(self, analysed):
        program, cfa = analysed
        document = json.loads(result_to_json(cfa))
        site = program.applications[0]
        entry = document["call_graph"][str(site.nid)]
        assert entry["callees"] == ["id"]

    def test_label_flows_match_queries(self, analysed):
        program, cfa = analysed
        document = json.loads(result_to_json(cfa))
        for label, nids in document["label_flows"].items():
            expected = sorted(
                e.nid for e in cfa.expressions_with_label(label)
            )
            assert nids == expected

    def test_works_with_standard_algorithm(self):
        import repro

        program = parse("(fn[f] x => x) (fn[g] y => y)")
        cfa = repro.analyze(program, algorithm="standard")
        document = json.loads(result_to_json(cfa))
        assert document["call_graph"][str(program.root.nid)][
            "callees"
        ] == ["f"]

    def test_stable_output(self, analysed):
        _, cfa = analysed
        assert result_to_json(cfa) == result_to_json(cfa)

    def test_byte_stable_across_fresh_analyses(self):
        # The serve cache depends on equal inputs producing equal
        # bytes, not just equal structures.
        source = "let id = fn[id] x => x in id (fn[g] y => y)"
        first = result_to_json(analyze_subtransitive(parse(source)))
        second = result_to_json(analyze_subtransitive(parse(source)))
        assert first == second


class TestFingerprint:
    def test_deterministic(self, analysed):
        _, cfa = analysed
        assert result_fingerprint(cfa) == result_fingerprint(cfa)
        assert len(result_fingerprint(cfa)) == 64
        int(result_fingerprint(cfa), 16)  # hex digest

    def test_accepts_result_or_document(self, analysed):
        _, cfa = analysed
        document = result_to_dict(cfa)
        assert result_fingerprint(cfa) == result_fingerprint(document)

    def test_key_order_irrelevant(self, analysed):
        _, cfa = analysed
        document = result_to_dict(cfa)
        shuffled = dict(reversed(list(document.items())))
        assert canonical_json(document) == canonical_json(shuffled)
        assert result_fingerprint(document) == result_fingerprint(
            shuffled
        )

    def test_changes_with_program(self):
        a = analyze_subtransitive(parse("fn[f] x => x"))
        b = analyze_subtransitive(parse("fn[g] y => y"))
        assert result_fingerprint(a) != result_fingerprint(b)
