"""Tests for the error hierarchy and top-level API surface."""

import pytest

import repro
from repro.errors import (
    AnalysisBudgetExceeded,
    AnalysisError,
    EvaluationError,
    FuelExhausted,
    LexError,
    OccursCheckError,
    ParseError,
    ReproError,
    ScopeError,
    SourceError,
    TypeInferenceError,
    UnificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LexError,
            ParseError,
            ScopeError,
            TypeInferenceError,
            EvaluationError,
            AnalysisError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_fuel_is_evaluation_error(self):
        assert issubclass(FuelExhausted, EvaluationError)

    def test_occurs_is_unification_is_inference(self):
        assert issubclass(OccursCheckError, UnificationError)
        assert issubclass(UnificationError, TypeInferenceError)

    def test_budget_is_analysis_error(self):
        assert issubclass(AnalysisBudgetExceeded, AnalysisError)

    def test_source_errors_carry_position(self):
        err = ParseError("boom", 3, 7)
        assert err.line == 3 and err.column == 7
        assert "3:7" in str(err)


class TestAnalyzeFacade:
    def test_default_is_subtransitive(self):
        prog = repro.parse("(fn[f] x => x) (fn[g] y => y)")
        cfa = repro.analyze(prog)
        assert cfa.labels_of(prog.root) == {"g"}

    @pytest.mark.parametrize(
        "name", ["standard", "dtc", "equality", "subtransitive",
                 "hybrid", "polyvariant"]
    )
    def test_every_algorithm_runs(self, name):
        prog = repro.parse("(fn[f] x => x) (fn[g] y => y)")
        cfa = repro.analyze(prog, algorithm=name)
        assert "g" in cfa.labels_of(prog.root)

    def test_unknown_algorithm(self):
        prog = repro.parse("fn[f] x => x")
        with pytest.raises(ValueError) as excinfo:
            repro.analyze(prog, algorithm="quantum")
        assert "quantum" in str(excinfo.value)

    def test_version(self):
        assert repro.__version__
