"""Tests for the rule DSL combinators (repro.rules.dsl)."""

import pytest

from repro.rules import (
    Rel,
    RuleProgram,
    Rule,
    RuleSyntaxError,
    fingerprint,
    make_vars,
)
from repro.rules.dsl import LABEL, NID, NODE, Var

N, M, S = make_vars("N M S")

EDGE = Rel("edge", NODE, NODE, kind="edb")
MARK = Rel("mark", NODE, kind="edb")
REACH = Rel("reach", NODE)


def reach_program():
    return RuleProgram(
        "reach",
        [
            Rule(REACH(N), [MARK(N)], name="seed"),
            Rule(REACH(N), [REACH(M), EDGE(M, N)], name="step"),
        ],
    )


class TestVar:
    def test_identity_by_name(self):
        assert Var("X") == Var("X")
        assert hash(Var("X")) == hash(Var("X"))
        assert Var("X") != Var("Y")

    def test_make_vars(self):
        a, b = make_vars("A B")
        assert (a.name, b.name) == ("A", "B")

    def test_bad_name(self):
        with pytest.raises(RuleSyntaxError):
            Var("1bad")
        with pytest.raises(RuleSyntaxError):
            Var("")


class TestRel:
    def test_arity_and_kind(self):
        assert EDGE.arity == 2
        assert EDGE.kind == "edb"
        assert REACH.kind == "idb"
        assert not REACH.bounded

    def test_bounded_key_arity(self):
        calls = Rel("calls", NODE, NID, k=1)
        assert calls.bounded
        assert calls.key_arity == 1

    def test_no_columns_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rel("empty")

    def test_unknown_column_type_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rel("bad", "float")

    def test_bad_kind_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rel("bad", NODE, kind="view")

    def test_bounded_edb_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rel("bad", NODE, NID, kind="edb", k=1)

    def test_bounded_needs_key_column(self):
        with pytest.raises(RuleSyntaxError):
            Rel("bad", NID, k=1)
        with pytest.raises(RuleSyntaxError):
            Rel("bad", NODE, NID, k=0)


class TestAtom:
    def test_arity_checked(self):
        with pytest.raises(RuleSyntaxError):
            EDGE(N)

    def test_node_columns_reject_constants(self):
        with pytest.raises(RuleSyntaxError):
            EDGE(N, 3)

    def test_scalar_constant_types_checked(self):
        lam_at = Rel("lam_at", NODE, LABEL, kind="edb")
        lam_at(N, "f")  # fine
        with pytest.raises(RuleSyntaxError):
            lam_at(N, 7)
        with pytest.raises(RuleSyntaxError):
            lam_at(N, True)

    def test_negation(self):
        atom = ~MARK(N)
        assert atom.negated
        assert atom.render() == "!mark(N)"
        with pytest.raises(RuleSyntaxError):
            ~atom  # double negation is not a literal


class TestRule:
    def test_negated_head_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rule(~REACH(N), [MARK(N)])

    def test_edb_head_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rule(MARK(N), [REACH(N)])

    def test_empty_body_rejected(self):
        with pytest.raises(RuleSyntaxError):
            Rule(REACH(N), [])

    def test_positive_negative_split(self):
        rule = Rule(REACH(N), [MARK(N), ~REACH(M), EDGE(M, N)])
        assert [a.rel.name for a in rule.positive] == ["mark", "edge"]
        assert [a.rel.name for a in rule.negative] == ["reach"]

    def test_render(self):
        rule = Rule(REACH(N), [REACH(M), EDGE(M, N)], name="step")
        assert rule.render() == "step: reach(N) :- reach(M), edge(M, N)."


class TestRuleProgram:
    def test_outputs_default_to_derived_relations(self):
        program = reach_program()
        assert [rel.name for rel in program.outputs] == ["reach"]

    def test_edb_output_rejected(self):
        with pytest.raises(RuleSyntaxError):
            RuleProgram(
                "bad", [Rule(REACH(N), [MARK(N)])], outputs=(MARK,)
            )

    def test_conflicting_declarations_rejected(self):
        other_reach = Rel("reach", NODE, NODE)
        program = RuleProgram(
            "bad",
            [
                Rule(REACH(N), [MARK(N)]),
                Rule(other_reach(N, M), [EDGE(N, M)]),
            ],
        )
        with pytest.raises(RuleSyntaxError):
            program.relations()

    def test_render_is_canonical(self):
        text = reach_program().render()
        assert text.splitlines()[0] == "program reach"
        assert "decl edb edge(node,node)" in text
        assert "output reach/1" in text
        assert "rule step: reach(N) :- reach(M), edge(M, N)." in text


class TestFingerprint:
    def test_deterministic_and_order_independent(self):
        other = RuleProgram("other", [Rule(REACH(N), [MARK(N)])])
        a = fingerprint([reach_program(), other])
        b = fingerprint([other, reach_program()])
        assert a == b
        assert len(a) == 64

    def test_sensitive_to_rule_text(self):
        changed = RuleProgram(
            "reach",
            [
                Rule(REACH(N), [MARK(N)], name="seed"),
                Rule(REACH(N), [REACH(M), EDGE(N, M)], name="step"),
            ],
        )
        assert fingerprint([reach_program()]) != fingerprint([changed])
