"""Tests for the reference evaluator and its label tracing."""

import pytest

from repro.errors import EvaluationError, FuelExhausted
from repro.lang import evaluate, parse
from repro.lang.eval import Closure, ConValue, RecordValue, render_value

DT = "datatype intlist = Nil | Cons of int * intlist;\n"


def run(src, fuel=100_000):
    return evaluate(parse(src), fuel=fuel)


class TestValues:
    def test_integer_arithmetic(self):
        assert run("1 + 2 * 3").value == 7

    def test_subtraction(self):
        assert run("10 - 3 - 2").value == 5

    def test_comparisons(self):
        assert run("1 < 2").value is True
        assert run("2 <= 1").value is False
        assert run("3 == 3").value is True

    def test_not(self):
        assert run("not (1 < 2)").value is False

    def test_unit(self):
        assert run("()").value is None

    def test_closure_value(self):
        result = run("fn[me] x => x")
        assert isinstance(result.value, Closure)
        assert result.value.label == "me"

    def test_record_and_projection(self):
        assert run("#2 (10, 20, 30)").value == 20

    def test_constructors(self):
        result = run(DT + "Cons(1, Nil)")
        assert isinstance(result.value, ConValue)
        assert result.value.cname == "Cons"

    def test_case_dispatch(self):
        assert run(DT + "case Cons(7, Nil) of Nil => 0 "
                        "| Cons(h, t) => h end").value == 7

    def test_if(self):
        assert run("if 1 < 2 then 10 else 20").value == 10

    def test_let(self):
        assert run("let x = 4 in x * x").value == 16

    def test_letrec_recursion(self):
        src = (
            "letrec fact = fn n => if n < 2 then 1 "
            "else n * fact (n - 1) in fact 5"
        )
        assert run(src).value == 120

    def test_refs(self):
        assert run("let c = ref 1 in let u = c := 41 in !c + 1").value == 42

    def test_ref_aliasing(self):
        src = (
            "let c = ref 1 in let d = c in "
            "let u = d := 9 in !c"
        )
        assert run(src).value == 9

    def test_higher_order(self):
        src = (
            "let compose = fn f => fn g => fn x => f (g x) in "
            "compose (fn a => a + 1) (fn b => b * 2) 5"
        )
        assert run(src).value == 11


class TestEffects:
    def test_print_collects_output(self):
        result = run("let u = print 1 in print 2")
        assert result.output == ["1", "2"]

    def test_print_returns_unit(self):
        assert run("print 5").value is None

    def test_print_renders_values(self):
        assert run(DT + "print (Cons(1, Nil))").output == ["Cons(1, Nil)"]

    def test_evaluation_order_left_to_right(self):
        src = "(fn x => fn y => 0) (print 1) (print 2)"
        assert run(src).output == ["1", "2"]


class TestTrace:
    def test_trace_records_closure_at_occurrence(self):
        prog = parse("(fn[f] x => x) (fn[g] y => y)")
        result = evaluate(prog)
        assert result.trace.labels_at(prog.root) == {"g"}
        assert result.trace.labels_at(prog.root.fn) == {"f"}

    def test_trace_through_variable(self):
        prog = parse("let id = fn[id] x => x in id id")
        result = evaluate(prog)
        # Both occurrences of id evaluate to the id closure.
        occurrences = [
            n for n in prog.nodes
            if type(n).__name__ == "Var" and n.name == "id"
        ]
        for occ in occurrences:
            assert result.trace.labels_at(occ) == {"id"}

    def test_letrec_bound_traced(self):
        prog = parse("letrec f = fn[f] x => x in f 1")
        result = evaluate(prog)
        assert result.trace.labels_at(prog.root.bound) == {"f"}

    def test_non_function_values_not_traced(self):
        prog = parse("1 + 2")
        result = evaluate(prog)
        assert len(result.trace) == 0


class TestErrors:
    def test_apply_non_function(self):
        with pytest.raises(EvaluationError):
            run("1 2")

    def test_projection_out_of_range(self):
        with pytest.raises(EvaluationError):
            run("#3 (1, 2)")

    def test_projection_of_non_record(self):
        with pytest.raises(EvaluationError):
            run("#1 5")

    def test_case_on_non_datatype(self):
        with pytest.raises(EvaluationError):
            run(DT + "case 5 of Nil => 0 | Cons(h, t) => h end")

    def test_missing_branch(self):
        with pytest.raises(EvaluationError):
            run(DT + "case Cons(1, Nil) of Nil => 0 end")

    def test_if_non_bool(self):
        with pytest.raises(EvaluationError):
            run("if 1 then 2 else 3")

    def test_deref_non_ref(self):
        with pytest.raises(EvaluationError):
            run("!5")

    def test_assign_non_ref(self):
        with pytest.raises(EvaluationError):
            run("5 := 6")

    def test_prim_type_errors(self):
        with pytest.raises(EvaluationError):
            run("(fn x => x) 1 + true" .replace("x) 1", "x) true"))

    def test_fuel_exhaustion(self):
        src = "letrec loop = fn x => loop x in loop 0"
        with pytest.raises(FuelExhausted):
            run(src, fuel=500)

    def test_fuel_reported(self):
        src = "letrec loop = fn x => loop x in loop 0"
        with pytest.raises(FuelExhausted) as excinfo:
            run(src, fuel=123)
        assert excinfo.value.fuel == 123


class TestRenderValue:
    def test_renders_all_kinds(self):
        assert render_value(None) == "()"
        assert render_value(True) == "true"
        assert render_value(False) == "false"
        assert render_value(7) == "7"
        assert render_value(RecordValue((1, 2))) == "(1, 2)"
