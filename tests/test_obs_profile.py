"""The span profiler: tree mechanics, folded-stack export, engine
threading, exception balance, and the serve-layer plumbing.

The profiler's contract mirrors the tracer's: strictly opt-in
(``profiler=None`` everywhere, one ``is not None`` test per site), so
the acceptance criterion is structural — profiled runs must produce a
well-formed folded-stack export whose top-level spans are the engine
phases, while unprofiled runs never touch a profiler at all.
"""

import pytest

import repro
from repro.core.hybrid import analyze_hybrid
from repro.core.queries import analyze_subtransitive
from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse
from repro.lint import run_lints
from repro.obs import Span, SpanProfiler, validate_folded
from repro.workloads.cubic import make_cubic_program

SOURCE = (
    "let twice = fn[twice] f => fn[inner] x => f (f x) in "
    "twice (fn[inc] y => y + 1) 3"
)


class TestSpanTree:
    def test_push_pop_builds_interned_tree(self):
        profiler = SpanProfiler()
        for _ in range(3):
            profiler.push("a")
            profiler.push("b")
            profiler.pop()
            profiler.pop()
        assert profiler.depth == 0
        spans = dict(profiler.walk())
        assert set(spans) == {("a",), ("a", "b")}
        assert spans[("a",)].count == 3
        assert spans[("a", "b")].count == 3

    def test_pop_at_root_raises(self):
        with pytest.raises(RuntimeError):
            SpanProfiler().pop()

    def test_span_context_manager_balances_on_error(self):
        profiler = SpanProfiler()
        with pytest.raises(ValueError):
            with profiler.span("outer"):
                with profiler.span("inner"):
                    raise ValueError("boom")
        assert profiler.depth == 0
        assert dict(profiler.walk())[("outer", "inner")].count == 1

    def test_self_seconds_never_negative(self):
        parent = Span("p", None)
        child = Span("c", parent)
        parent.children["c"] = child
        parent.seconds = 0.5
        child.seconds = 0.7  # clock jitter: child measured longer
        assert parent.self_seconds == 0.0

    def test_recursive_name_nests_as_child(self):
        profiler = SpanProfiler()
        profiler.push("sweep")
        profiler.push("sweep")
        profiler.pop()
        profiler.pop()
        assert {path for path, _ in profiler.walk()} == {
            ("sweep",),
            ("sweep", "sweep"),
        }


class TestFoldedExport:
    def test_folded_lines_validate(self):
        profiler = SpanProfiler()
        with profiler.span("phase.build"):
            pass
        with profiler.span("phase.close"):
            with profiler.span("sweep"):
                pass
        lines = profiler.folded()
        assert validate_folded(lines) is lines
        stacks = {line.rpartition(" ")[0] for line in lines}
        assert stacks == {
            "phase.build",
            "phase.close",
            "phase.close;sweep",
        }

    def test_weights_are_scaled_self_time(self):
        profiler = SpanProfiler()
        profiler.push("a")
        profiler.pop()
        span = dict(profiler.walk())[("a",)]
        span.seconds = 0.001234
        (line,) = profiler.folded()
        assert line == "a 1234"

    def test_structural_characters_sanitised(self):
        profiler = SpanProfiler()
        with profiler.span("has space;and semi"):
            pass
        validate_folded(profiler.folded())

    @pytest.mark.parametrize(
        "bad",
        [
            ["a"],  # no weight
            ["a -1"],  # negative weight
            ["a 1.5"],  # fractional weight
            [" 3"],  # empty stack
            ["a;;b 3"],  # empty frame
        ],
    )
    def test_validate_folded_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_folded(bad)


class TestEngineProfile:
    def test_profiled_run_has_phase_spans(self):
        profiler = SpanProfiler()
        program = make_cubic_program(8)
        cfa = analyze_subtransitive(program, profiler=profiler)
        for site in program.nontrivial_applications():
            cfa.may_call(site)
        paths = {path for path, _ in profiler.walk()}
        assert ("phase.build",) in paths
        assert ("phase.close",) in paths
        assert ("phase.close", "sweep") in paths
        # Rule-family attribution under the sweep.
        assert any(
            path[-1] in ("rule.CLOSE-COV", "rule.CLOSE-CONTRA")
            for path in paths
            if len(path) == 3
        )
        validate_folded(profiler.folded())
        assert profiler.depth == 0

    def test_unprofiled_by_default(self):
        from repro.core.lc import LCEngine

        engine = LCEngine(parse(SOURCE))
        assert engine.profiler is None
        engine.run()  # the None default must not be touched by a run

    def test_lint_spans(self):
        profiler = SpanProfiler()
        program = parse(SOURCE)
        cfa = analyze_subtransitive(program, profiler=profiler)
        run_lints(program, cfa, profiler=profiler)
        paths = {path for path, _ in profiler.walk()}
        assert any(path[0].startswith("lint.") for path in paths)
        validate_folded(profiler.folded())

    def test_budget_trip_leaves_profiler_balanced(self):
        profiler = SpanProfiler()
        with pytest.raises(AnalysisBudgetExceeded):
            analyze_subtransitive(
                make_cubic_program(8), node_budget=5, profiler=profiler
            )
        assert profiler.depth == 0
        validate_folded(profiler.folded())

    def test_hybrid_fallback_profiles_both_attempts(self):
        profiler = SpanProfiler()
        hybrid = analyze_hybrid(
            make_cubic_program(8), node_budget=5, profiler=profiler
        )
        assert hybrid.engine == "standard"
        paths = {path for path, _ in profiler.walk()}
        # The abandoned LC' attempt and the fallback both show up.
        assert ("phase.build",) in paths
        assert ("hybrid.fallback",) in paths
        assert profiler.depth == 0

    def test_analyze_kwarg_dispatch(self):
        profiler = SpanProfiler()
        repro.analyze(parse(SOURCE), profiler=profiler)
        assert profiler.total_seconds() > 0.0


class TestServeProfile:
    def _runner(self, profile):
        from repro.serve import BatchRunner

        return BatchRunner(jobs=1, profile=profile)

    def test_profile_rides_the_result_not_the_envelope(self):
        from repro.serve import jobs_from_sources

        batch = self._runner(True).run(jobs_from_sources([SOURCE]))
        (result,) = batch.results
        assert result.profile is not None
        validate_folded(result.profile)
        assert "profile" not in (result.envelope or {})

    def test_profile_off_by_default(self):
        from repro.serve import jobs_from_sources

        batch = self._runner(False).run(jobs_from_sources([SOURCE]))
        assert batch.results[0].profile is None

    def test_profile_does_not_shard_the_cache(self):
        # Profiling is a payload flag, not an analysis option: a
        # profiled and an unprofiled run of the same source must share
        # one cache entry (the profiled run warming it for the other).
        from repro.serve import jobs_from_sources
        from repro.serve.cache import ResultCache

        cache = ResultCache()
        runner_on = self._runner(True)
        runner_on.cache = cache
        runner_on.run(jobs_from_sources([SOURCE]))
        runner_off = self._runner(False)
        runner_off.cache = cache
        batch = runner_off.run(jobs_from_sources([SOURCE]))
        (result,) = batch.results
        assert result.cache == "memory"
        assert result.profile is None  # cache hits carry no profile

    def test_job_record_carries_validated_profile(self):
        from repro.serve import jobs_from_sources
        from repro.serve.protocol import job_record, validate_batch_record

        batch = self._runner(True).run(jobs_from_sources([SOURCE]))
        record = validate_batch_record(job_record(batch.results[0]))
        validate_folded(record["profile"])

    def test_job_record_rejects_malformed_profile(self):
        from repro.serve import jobs_from_sources
        from repro.serve.protocol import job_record, validate_batch_record

        batch = self._runner(True).run(jobs_from_sources([SOURCE]))
        record = job_record(batch.results[0])
        record["profile"] = ["not a folded line"]
        with pytest.raises(ValueError, match=r"\$\.profile"):
            validate_batch_record(record)
