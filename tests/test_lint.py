"""Tests for the lint passes, the driver, and the renderers.

The load-bearing properties:

* each rule fires exactly where its definition says (unit programs);
* L002 agrees with the empty-label-set criterion of the *standard*
  cubic CFA on fuzzed programs (the rules are CFA verdicts, not
  heuristics);
* a full lint run never materialises a label set and visits O(graph)
  nodes (the linearity regression).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfa.standard import analyze_standard
from repro.core.hybrid import analyze_hybrid
from repro.core.lc import build_subtransitive_graph
from repro.core.queries import SubtransitiveCFA
from repro.lang import parse
from repro.lint import (
    ALL_PASSES,
    DeadLambdaPass,
    StuckApplicationPass,
    UnusedBindingPass,
    run_lints,
    severity_at_least,
)
from repro.lint.findings import SCHEMA
from repro.obs import MetricsRegistry
from repro.workloads.cubic import make_cubic_program
from repro.workloads.generators import random_typed_program

#: One program triggering every rule (mirrors examples/lint_showcase.lam).
SHOWCASE = """
let dead = fn[dead] x => x in
let keep = (fn[kept] a => a, fn[other] b => b) in
let unused = fn[u] q => q in
let once_fn = fn[once_fn] w => w in
let escaper = fn[escaper] z => z in
let _eff = print escaper in
letrec loop = fn[loop] n => loop n in
let stuck_val = (loop 1) 2 in
once_fn ((#2 keep) stuck_val)
"""


def lint_source(source, **kwargs):
    program = parse(source)
    sub = build_subtransitive_graph(program)
    return program, run_lints(program, sub, **kwargs)


class TestRules:
    def test_l001_dead_lambda(self):
        _, result = lint_source("let dead = fn[dead] x => x in 1")
        assert "L001" in result.rules_fired()
        (finding,) = result.by_rule()["L001"]
        assert finding.label == "dead"

    def test_l001_silent_when_called(self):
        _, result = lint_source("let f = fn[f] x => x in f 1")
        assert "L001" not in result.rules_fired()

    def test_l002_stuck_application(self):
        src = (
            "letrec loop = fn[loop] x => loop x in (loop 1) 2"
        )
        program, result = lint_source(src)
        (finding,) = result.by_rule()["L002"]
        # The flagged site is the outer application of a non-function.
        assert finding.nid == program.root.body.nid
        assert finding.severity == "error"

    def test_l002_silent_on_live_call(self):
        _, result = lint_source("(fn[f] x => x) 1")
        assert "L002" not in result.rules_fired()

    def test_l003_called_once_names_site(self):
        program, result = lint_source("let f = fn[f] x => x in f 1")
        (finding,) = result.by_rule()["L003"]
        assert finding.label == "f"
        (site,) = program.applications
        assert f"nid {site.nid}" in finding.message

    def test_l003_silent_on_two_sites(self):
        _, result = lint_source(
            "let f = fn[f] x => x in (f 1, f 2)"
        )
        assert "L003" not in result.rules_fired()

    def test_l004_escaping_function(self):
        _, result = lint_source(
            "let esc = fn[esc] x => x in print esc"
        )
        (finding,) = result.by_rule()["L004"]
        assert finding.label == "esc"

    def test_l004_silent_on_scalar_sink(self):
        _, result = lint_source(
            "let f = fn[f] x => x in print (f 1)"
        )
        assert "L004" not in result.rules_fired()

    def test_l005_unused_binding(self):
        _, result = lint_source("let unused = fn[u] x => x in 1")
        (finding,) = result.by_rule()["L005"]
        assert "unused" in finding.message

    def test_l005_skips_underscore_names(self):
        _, result = lint_source("let _scratch = fn[u] x => x in 1")
        assert "L005" not in result.rules_fired()

    def test_showcase_triggers_every_rule(self):
        _, result = lint_source(SHOWCASE)
        assert set(result.rules_fired()) == {
            "L001", "L002", "L003", "L004", "L005"
        }


class TestDriver:
    def test_builds_graph_when_given_none(self):
        program = parse("let dead = fn[dead] x => x in 1")
        result = run_lints(program)
        assert result.engine == "subtransitive"
        assert "L001" in result.rules_fired()

    def test_accepts_cfa_wrapper(self):
        program = parse("let dead = fn[dead] x => x in 1")
        cfa = SubtransitiveCFA(build_subtransitive_graph(program))
        result = run_lints(program, cfa)
        assert "L001" in result.rules_fired()

    def test_rejects_foreign_results(self):
        program = parse("fn[id] x => x")
        with pytest.raises(TypeError):
            run_lints(program, analyze_standard(program))

    def test_pass_subset(self):
        _, result = lint_source(
            SHOWCASE, passes=[DeadLambdaPass, UnusedBindingPass]
        )
        assert set(result.rules_fired()) == {"L001", "L005"}

    def test_scope_restricts_incremental_passes(self):
        program = parse(SHOWCASE)
        sub = build_subtransitive_graph(program)
        scoped = run_lints(program, sub, scope=set())
        # Incremental passes see an empty scope; the non-incremental
        # escape pass still runs over the whole program.
        assert set(scoped.rules_fired()) == {"L004"}

    def test_pass_seconds_recorded(self):
        _, result = lint_source(SHOWCASE)
        assert set(result.pass_seconds) == {
            cls.code for cls in ALL_PASSES
        }


class TestHybridFallback:
    OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"

    def test_fallback_findings_tagged_standard(self):
        program = parse(self.OMEGA)
        hybrid = analyze_hybrid(program)
        assert hybrid.engine == "standard"
        result = run_lints(program, hybrid)
        assert result.engine == "standard"
        assert result.fallback_reason == hybrid.fallback_reason
        assert result.findings
        assert all(f.via == "standard" for f in result.findings)

    def test_fallback_agrees_with_graph_path_on_typed_program(self):
        # On a program LC' handles, force the fallback implementation
        # through a budget-0 hybrid and compare verdicts.
        program = parse(SHOWCASE)
        sub = build_subtransitive_graph(program)
        linear = run_lints(program, sub)
        forced = analyze_hybrid(program, node_budget=1)
        assert forced.engine == "standard"
        fallback = run_lints(program, forced)
        assert {(f.rule, f.nid) for f in linear.findings} == {
            (f.rule, f.nid) for f in fallback.findings
        }


class TestRenderers:
    def test_text_render_has_positions_and_codes(self):
        _, result = lint_source("let dead = fn[dead] x => x in 1")
        text = result.render_text("prog.ml")
        assert "prog.ml:1:12: L001 warning:" in text

    def test_json_document_shape(self):
        _, result = lint_source(SHOWCASE)
        document = result.to_dict("prog.ml")
        assert document["path"] == "prog.ml"
        assert document["engine"] == "subtransitive"
        assert document["fallback_reason"] is None
        assert set(document["counts"]) == set(result.rules_fired())
        for finding in document["findings"]:
            assert set(finding) >= {
                "rule", "severity", "nid", "line", "column",
                "message", "via",
            }
        json.dumps(document)  # JSON-safe throughout

    def test_findings_sorted_by_position(self):
        _, result = lint_source(SHOWCASE)
        keys = [f.sort_key for f in result.findings]
        assert keys == sorted(keys)

    def test_schema_tag(self):
        assert SCHEMA == "repro.lint/1"


class TestFiltering:
    def test_severity_order(self):
        assert severity_at_least("error", "warning")
        assert not severity_at_least("info", "warning")

    def test_filtered_by_severity(self):
        _, result = lint_source(SHOWCASE)
        errors = result.filtered(min_severity="error")
        assert set(errors.rules_fired()) == {"L002"}

    def test_filtered_by_rules(self):
        _, result = lint_source(SHOWCASE)
        only = result.filtered(rules={"L001", "L004"})
        assert set(only.rules_fired()) == {"L001", "L004"}


class TestLinearity:
    def test_no_label_set_queries_and_bounded_visits(self):
        program = make_cubic_program(24)
        registry = MetricsRegistry()
        sub = build_subtransitive_graph(program, registry=registry)
        run_lints(program, sub, registry=registry)
        assert registry.counter("queries.count").value == 0
        assert registry.counter("queries.labels_of").value == 0
        visited = registry.counter("lint.visited_nodes").value
        assert 0 < visited <= 3 * sub.graph.node_count

    def test_findings_counters_match(self):
        program = parse(SHOWCASE)
        registry = MetricsRegistry()
        sub = build_subtransitive_graph(program, registry=registry)
        result = run_lints(program, sub, registry=registry)
        for code, findings in result.by_rule().items():
            counted = registry.counter(f"lint.findings.{code}").value
            assert counted == len(findings)


class TestL002Property:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_l002_matches_standard_empty_label_sets(self, seed):
        program = random_typed_program(
            seed, fuel=20, use_datatypes=False
        )
        sub = build_subtransitive_graph(program)
        result = run_lints(
            program, sub, passes=[StuckApplicationPass]
        )
        flagged = {f.nid for f in result.findings}
        std = analyze_standard(program)
        expected = {
            site.nid
            for site in program.applications
            if not std.may_call(site)
        }
        assert flagged == expected
