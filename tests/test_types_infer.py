"""Tests for Hindley-Milner inference over the mini-ML language."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TypeInferenceError
from repro.lang import parse
from repro.types.infer import infer_types
from repro.types.types import BOOL, INT, TData, TFun, TRecord, TRef, UNIT
from repro.workloads.generators import random_typed_program

DT = "datatype intlist = Nil | Cons of int * intlist;\n"


def type_of(src):
    prog = parse(src)
    return infer_types(prog).type_of(prog.root)


class TestBaseForms:
    def test_int_literal(self):
        assert type_of("42") == INT

    def test_bool_literal(self):
        assert type_of("true") == BOOL

    def test_unit_literal(self):
        assert type_of("()") == UNIT

    def test_identity_function(self):
        ty = type_of("fn x => x + 1")
        assert ty == TFun(INT, INT)

    def test_application(self):
        assert type_of("(fn x => x + 1) 2") == INT

    def test_if_branches_unify(self):
        assert type_of("if true then 1 else 2") == INT

    def test_if_condition_must_be_bool(self):
        with pytest.raises(TypeInferenceError):
            type_of("if 1 then 2 else 3")

    def test_branch_mismatch(self):
        with pytest.raises(TypeInferenceError):
            type_of("if true then 1 else false")

    def test_arith_prims(self):
        assert type_of("1 + 2 * 3 - 4") == INT

    def test_comparison_prims(self):
        assert type_of("1 < 2") == BOOL

    def test_print_is_polymorphic(self):
        assert type_of("print 1") == UNIT
        assert type_of("print (fn x => x + 1)") == UNIT

    def test_self_application_rejected(self):
        with pytest.raises(TypeInferenceError):
            type_of("fn x => x x")

    def test_omega_rejected(self):
        with pytest.raises(TypeInferenceError):
            type_of("(fn x => x x) (fn y => y y)")


class TestLetPolymorphism:
    def test_let_generalises(self):
        # id used at two different types.
        assert type_of("let id = fn x => x in (id (fn y => y)) (id 1)") == INT

    def test_id_id_id(self):
        # The paper's Section 5 example: fun id x = x; (id id) id.
        src = "let id = fn x => x in ((id id) id) 1"
        assert type_of(src) == INT

    def test_lambda_bound_is_monomorphic(self):
        with pytest.raises(TypeInferenceError):
            type_of("(fn f => (f 1, f true)) (fn x => x)")

    def test_instantiations_recorded_per_occurrence(self):
        prog = parse("let id = fn x => x in (id 1, id true)")
        inference = infer_types(prog)
        from repro.lang.ast import Var

        uses = [
            n for n in prog.nodes
            if isinstance(n, Var) and n.name == "id"
        ]
        types = {str(inference.type_of(u)) for u in uses}
        assert types == {"int -> int", "bool -> bool"}

    def test_letrec_monomorphic_inside(self):
        src = (
            "letrec f = fn x => if true then x else f x in (f 1, f 2)"
        )
        assert type_of(src) == TRecord((INT, INT))

    def test_letrec_generalised_for_body(self):
        src = (
            "letrec f = fn x => if true then x else f x "
            "in (f 1, f true)"
        )
        assert type_of(src) == TRecord((INT, BOOL))

    def test_scheme_recorded(self):
        prog = parse("let id = fn x => x in id 1")
        inference = infer_types(prog)
        assert not inference.schemes["id"].is_mono


class TestRecordsRefsData:
    def test_record_type(self):
        assert type_of("(1, true)") == TRecord((INT, BOOL))

    def test_projection(self):
        assert type_of("#2 (1, true)") == BOOL

    def test_projection_out_of_range(self):
        with pytest.raises(TypeInferenceError):
            type_of("#3 (1, true)")

    def test_flex_projection_defaults_to_minimal_record(self):
        # A record constrained only by its projections defaults to the
        # smallest record the indices require.
        from repro.types.types import prune

        ty = type_of("fn p => #2 p")
        assert isinstance(ty, TFun)
        param = prune(ty.param)
        assert isinstance(param, TRecord)
        assert len(param.fields) == 2

    def test_flex_projection_resolved_by_later_use(self):
        ty = type_of("(fn p => #1 p) (1, true)")
        assert ty == INT

    def test_projection_of_non_record(self):
        with pytest.raises(TypeInferenceError):
            type_of("#1 5")

    def test_ref_types(self):
        assert type_of("ref 1") == TRef(INT)
        assert type_of("!(ref 1)") == INT
        assert type_of("(ref 1) := 2") == UNIT

    def test_assign_content_mismatch(self):
        with pytest.raises(TypeInferenceError):
            type_of("(ref 1) := true")

    def test_constructor_types(self):
        assert type_of(DT + "Cons(1, Nil)") == TData("intlist")

    def test_constructor_argument_mismatch(self):
        with pytest.raises(TypeInferenceError):
            type_of(DT + "Cons(true, Nil)")

    def test_case_result(self):
        src = DT + "case Cons(1, Nil) of Nil => 0 | Cons(h, t) => h end"
        assert type_of(src) == INT

    def test_case_branch_mismatch(self):
        src = DT + "case Nil of Nil => 0 | Cons(h, t) => true end"
        with pytest.raises(TypeInferenceError):
            type_of(src)

    def test_case_scrutinee_must_match_datatype(self):
        src = DT + "case 1 of Nil => 0 | Cons(h, t) => h end"
        with pytest.raises(TypeInferenceError):
            type_of(src)

    def test_case_params_typed_from_signature(self):
        prog = parse(
            DT + "case Nil of Nil => 0 | Cons(h, t) => h end"
        )
        inference = infer_types(prog)
        assert inference.type_of_var("h") == INT
        assert inference.type_of_var("t") == TData("intlist")

    def test_mixed_datatype_branches_rejected(self):
        src = (
            "datatype a = A;\ndatatype b = B;\n"
            "case A of A => 1 | B => 2 end"
        )
        with pytest.raises(TypeInferenceError):
            type_of(src)


class TestGeneratedProgramsAreTypeable:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generator_only_produces_typeable_programs(self, seed):
        prog = random_typed_program(seed, fuel=20)
        inference = infer_types(prog)
        # Every occurrence got an annotation.
        for node in prog.nodes:
            inference.type_of(node)
