"""Tests for the repro.flow dataflow framework.

Covers the k-bounded lattice, the shared worklist engine (fuel
accounting, metrics), the fused multi-analysis scheduler, and the
golden-output equivalence of the refactored apps analyses against
their pre-framework semantics.
"""

import pytest

from repro.apps.effects import effects_analysis, effects_analysis_baseline
from repro.cfa.standard import analyze_standard
from repro.core.lc import build_subtransitive_graph
from repro.errors import AnalysisBudgetExceeded
from repro.flow import (
    MANY,
    BoundedSetAnalysis,
    ConstructorAnalysis,
    EffectsAnalysis,
    EscapeAnalysis,
    FlowContext,
    NeednessAnalysis,
    ReachabilityAnalysis,
    TaintAnalysis,
    bounded_join,
    bounded_seed,
    run_flow,
    run_fused,
)
from repro.lang import parse
from repro.obs import MetricsRegistry

from tests.helpers import SAMPLE_SOURCES


def _context(src, registry=None):
    program = parse(src)
    sub = build_subtransitive_graph(program)
    return program, sub, FlowContext(program, sub, registry=registry)


# -- the k-bounded lattice ----------------------------------------------------


class TestLattice:
    def test_seed_within_bound(self):
        assert bounded_seed(["a", "b"], k=2) == frozenset({"a", "b"})

    def test_seed_over_bound_is_many(self):
        assert bounded_seed(["a", "b", "c"], k=2) is MANY

    def test_join_is_union(self):
        joined = bounded_join(
            frozenset({"a"}), frozenset({"b"}), k=2
        )
        assert joined == frozenset({"a", "b"})

    def test_join_over_bound_is_many(self):
        joined = bounded_join(
            frozenset({"a", "b"}), frozenset({"c"}), k=2
        )
        assert joined is MANY

    def test_many_is_absorbing(self):
        assert bounded_join(MANY, frozenset({"a"}), k=5) is MANY
        assert bounded_join(frozenset({"a"}), MANY, k=5) is MANY

    def test_many_is_a_singleton(self):
        assert bounded_join(MANY, MANY, k=1) is MANY


# -- the worklist engine ------------------------------------------------------


class TestRunFlow:
    def test_bounded_set_analysis_rejects_bad_k(self):
        with pytest.raises(ValueError):
            BoundedSetAnalysis({}, k=0, downstream=lambda n: ())

    def test_fuel_exhaustion_raises(self):
        program, sub, ctx = _context("let u = print 1 in 2")
        with pytest.raises(AnalysisBudgetExceeded):
            run_flow(EffectsAnalysis(), ctx, fuel=0)

    def test_default_fuel_is_generous(self):
        program, sub, ctx = _context(SAMPLE_SOURCES["refs"])
        run_flow(EffectsAnalysis(), ctx, fuel=ctx.default_fuel())

    def test_metrics_land_on_registry(self):
        registry = MetricsRegistry()
        program, sub, ctx = _context(
            "let r = ref 1 in let x = !r in print x",
            registry=registry,
        )
        run_flow(TaintAnalysis(), ctx, fuel=ctx.default_fuel())
        assert registry.counter("flow.steps.taint").value > 0
        assert registry.gauge("flow.fuel.budget.taint").value > 0
        used = registry.gauge("flow.fuel.used.taint").value
        assert 0 < used <= registry.gauge("flow.fuel.budget.taint").value


# -- the fused scheduler ------------------------------------------------------


FUSABLE = ["identity", "let_poly", "records", "datatype_map", "refs"]


class TestRunFused:
    def _analyses(self, ctx, sub):
        return [
            ReachabilityAnalysis(
                ctx.lambda_value_nodes,
                sub.graph.predecessors,
                name="reach-lambda",
            ),
            EscapeAnalysis(),
            TaintAnalysis(),
            NeednessAnalysis(),
            ConstructorAnalysis(ctx),
        ]

    @pytest.mark.parametrize("name", FUSABLE)
    def test_fused_equals_separate(self, name):
        src = SAMPLE_SOURCES[name]
        program, sub, ctx = _context(src)
        fused = run_fused(
            self._analyses(ctx, sub), ctx, fuel=ctx.default_fuel()
        )
        # A fresh context per separate run: analyses must not rely on
        # state the fused run happened to leave behind.
        for i, result in enumerate(fused):
            program2, sub2, ctx2 = _context(src)
            alone = run_flow(
                self._analyses(ctx2, sub2)[i],
                ctx2,
                fuel=ctx2.default_fuel(),
            )
            if isinstance(result, dict):
                assert {
                    n.describe(): v for n, v in result.items()
                } == {n.describe(): v for n, v in alone.items()}
            else:
                assert {n.describe() for n in result} == {
                    n.describe() for n in alone
                }

    def test_fused_metrics(self):
        registry = MetricsRegistry()
        program, sub, ctx = _context(
            SAMPLE_SOURCES["records"], registry=registry
        )
        run_fused(
            self._analyses(ctx, sub), ctx, fuel=ctx.default_fuel()
        )
        assert registry.counter("flow.steps.fused").value > 0
        assert registry.gauge("flow.fused.analyses").value == 5


# -- golden equivalence of the refactored apps --------------------------------


class TestAppsEquivalence:
    @pytest.mark.parametrize("name", sorted(SAMPLE_SOURCES))
    def test_effects_on_framework_matches_baseline(self, name):
        program = parse(SAMPLE_SOURCES[name])
        linear = effects_analysis(program)
        baseline = effects_analysis_baseline(
            program, analyze_standard(program)
        )
        assert linear.red_nids == baseline.red_nids, name

    def test_effects_marks_via_framework_engine(self):
        registry = MetricsRegistry()
        program = parse("let u = print 1 in 2")
        sub = build_subtransitive_graph(program, registry=registry)
        effects_analysis(program, sub=sub)
        assert registry.counter("flow.steps.effects").value > 0
