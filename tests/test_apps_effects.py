"""Tests for the linear-time effects analysis (paper Section 8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.effects import effects_analysis, effects_analysis_baseline
from repro.cfa.standard import analyze_standard
from repro.lang import parse
from repro.workloads.generators import random_typed_program


def analyse(src):
    prog = parse(src)
    return prog, effects_analysis(prog)


class TestBaseMarking:
    def test_print_is_effectful(self):
        prog, eff = analyse("print 1")
        assert eff.is_effectful(prog.root)

    def test_assignment_is_effectful(self):
        prog, eff = analyse("(ref 1) := 2")
        assert eff.is_effectful(prog.root)

    def test_pure_arithmetic(self):
        prog, eff = analyse("1 + 2 * 3")
        assert not eff.is_effectful(prog.root)
        assert eff.red_nids == frozenset()

    def test_ref_allocation_is_pure(self):
        prog, eff = analyse("ref 1")
        assert not eff.is_effectful(prog.root)

    def test_deref_is_pure(self):
        prog, eff = analyse("!(ref 1)")
        assert not eff.is_effectful(prog.root)


class TestStructuralPropagation:
    def test_child_reddens_parent(self):
        prog, eff = analyse("1 + print 2")
        assert eff.is_effectful(prog.root)

    def test_lambda_blocks_structural_redness(self):
        # Building a printing closure is pure.
        prog, eff = analyse("fn[noisy] x => print x")
        assert not eff.is_effectful(prog.root)

    def test_record_with_effectful_field(self):
        prog, eff = analyse("(print 1, 2)")
        assert eff.is_effectful(prog.root)

    def test_if_with_effectful_branch(self):
        prog, eff = analyse("if true then print 1 else ()")
        assert eff.is_effectful(prog.root)

    def test_let_with_effectful_bound(self):
        prog, eff = analyse("let u = print 1 in 2")
        assert eff.is_effectful(prog.root)


class TestFlowPropagation:
    def test_calling_effectful_function(self):
        prog, eff = analyse("(fn[noisy] x => print x) 1")
        assert eff.is_effectful(prog.root)

    def test_calling_pure_function(self):
        prog, eff = analyse("(fn[quiet] x => x + 1) 1")
        assert not eff.is_effectful(prog.root)

    def test_effect_through_variable(self):
        prog, eff = analyse(
            "let f = fn[noisy] x => print x in f 1"
        )
        assert eff.is_effectful(prog.root)

    def test_effect_through_higher_order_flow(self):
        src = (
            "let call = fn[call] f => f 1 in "
            "call (fn[noisy] x => print x)"
        )
        prog, eff = analyse(src)
        assert eff.is_effectful(prog.root)

    def test_pure_call_not_polluted_by_other_function(self):
        src = (
            "let q = fn[quiet] x => x in "
            "let n = fn[noisy] y => print y in q 1"
        )
        prog, eff = analyse(src)
        assert not eff.is_effectful(prog.root)

    def test_conflated_callees_pollute(self):
        # Monovariant: both callees possible at the shared site.
        src = (
            "let pick = if true then fn[quiet] x => x "
            "else fn[noisy] y => print y in pick 1"
        )
        prog, eff = analyse(src)
        assert eff.is_effectful(prog.root)

    def test_effect_through_ref_stored_function(self):
        src = (
            "let c = ref (fn[quiet] x => x) in "
            "let u = c := (fn[noisy] y => print y) in (!c) 1"
        )
        prog, eff = analyse(src)
        body = prog.root.body.body  # the (!c) 1 application
        assert eff.is_effectful(body)

    def test_recursion_with_effects(self):
        src = (
            "letrec go = fn[go] n => if n < 1 then () "
            "else let u = print n in go (n - 1) in go 3"
        )
        prog, eff = analyse(src)
        assert eff.is_effectful(prog.root)


class TestPureApplications:
    def test_listing(self):
        src = (
            "let q = fn[quiet] x => x in "
            "let n = fn[noisy] y => print y in "
            "let a = q 1 in n 2"
        )
        prog, eff = analyse(src)
        pure = eff.pure_applications()
        assert len(pure) == 1
        assert len(prog.applications) == 2


class TestBaselineEquality:
    """The paper: the linear colouring "computes exactly the same
    effects information" as the quadratic CFA consumer."""

    SOURCES = [
        "print 1",
        "fn x => print x",
        "(fn x => print x) 1",
        "let f = fn x => print x in f 1",
        "let call = fn f => f 1 in call (fn x => print x)",
        (
            "let c = ref (fn q => q) in "
            "let u = c := (fn y => print y) in (!c) 1"
        ),
        (
            "letrec go = fn n => if n < 1 then () "
            "else let u = print n in go (n - 1) in go 3"
        ),
        (
            "let compose = fn f => fn g => fn x => f (g x) in "
            "compose (fn a => print a) (fn b => b + 1) 7"
        ),
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_equal_red_sets(self, src):
        prog = parse(src)
        linear = effects_analysis(prog)
        baseline = effects_analysis_baseline(prog, analyze_standard(prog))
        assert linear.red_nids == baseline.red_nids

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_generated_equal(self, seed):
        # Feed the baseline the *same* CFA the linear pass runs on
        # (the subtransitive one), so the comparison isolates the
        # consumer: linear colouring == quadratic call-graph walk.
        from repro.core.queries import analyze_subtransitive

        prog = random_typed_program(seed, fuel=20)
        linear = effects_analysis(prog)
        baseline = effects_analysis_baseline(
            prog, analyze_subtransitive(prog)
        )
        assert linear.red_nids == baseline.red_nids, seed
