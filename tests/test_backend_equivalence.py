"""Golden-twin equivalence: the CSR graph backend must be *result-
identical* to the object backend, byte for byte.

The acceptance bar for the flat-array core is not "agrees on labels"
but "the canonical ``repro.result/1`` envelope is byte-identical" —
same call graph, same label flows, same engine section — on every
shipped example and on randomly generated well-typed programs, for
every engine that builds a subtransitive graph.
"""

import pathlib

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.errors import AnalysisBudgetExceeded
from repro.export import result_fingerprint, result_to_dict
from repro.workloads.generators import random_typed_program

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SOURCES = sorted(EXAMPLES_DIR.glob("*.lam"))

#: Engines that accept ``graph_backend`` (they build an LC' graph).
GRAPH_ALGORITHMS = ("subtransitive", "hybrid", "polyvariant")

seeds = st.integers(min_value=0, max_value=1_000_000)


def envelopes(program, algorithm):
    """Envelope documents for both backends; a backend-neutral budget
    abort (polyvariant on unbounded-type programs) must hit both
    backends identically and yields ``(None, None)``."""
    outcomes = []
    for backend in ("object", "csr"):
        try:
            result = repro.analyze(
                program, algorithm=algorithm, graph_backend=backend
            )
            outcomes.append(result_to_dict(result))
        except AnalysisBudgetExceeded as error:
            outcomes.append(("budget", str(error)))
    object_doc, csr_doc = outcomes
    if isinstance(object_doc, tuple) or isinstance(csr_doc, tuple):
        assert object_doc == csr_doc
        return None, None
    return object_doc, csr_doc


class TestExampleEnvelopes:
    @pytest.mark.parametrize(
        "path", EXAMPLE_SOURCES, ids=lambda p: p.name
    )
    @pytest.mark.parametrize("algorithm", GRAPH_ALGORITHMS)
    def test_examples_byte_identical(self, path, algorithm):
        program = repro.parse(path.read_text())
        object_doc, csr_doc = envelopes(program, algorithm)
        if object_doc is None:
            return  # symmetric budget abort, asserted in envelopes()
        assert object_doc == csr_doc
        assert result_fingerprint(object_doc) == result_fingerprint(
            csr_doc
        )

    def test_examples_present(self):
        # The glob above going empty would silently skip the suite.
        assert EXAMPLE_SOURCES


class TestGeneratedEnvelopes:
    @settings(max_examples=40, deadline=None)
    @given(seed=seeds)
    def test_random_programs_byte_identical(self, seed):
        program = random_typed_program(seed, fuel=20, use_datatypes=True)
        for algorithm in GRAPH_ALGORITHMS:
            object_doc, csr_doc = envelopes(program, algorithm)
            if object_doc is None:
                continue  # symmetric budget abort
            assert object_doc == csr_doc, (seed, algorithm)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_query_surface_agrees(self, seed):
        """Pointwise query agreement beyond the envelope: labels_of
        over every expression, both label-set directions."""
        program = random_typed_program(seed, fuel=20, use_datatypes=False)
        object_result = repro.analyze(program, graph_backend="object")
        csr_result = repro.analyze(program, graph_backend="csr")
        for node in program.nodes:
            assert object_result.labels_of(node) == csr_result.labels_of(
                node
            ), (seed, node.nid)
        for lam in program.abstractions:
            assert object_result.is_label_in(
                lam.label, program.nodes[0]
            ) == csr_result.is_label_in(lam.label, program.nodes[0])
