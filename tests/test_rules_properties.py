"""Property tests: compiled rule sweeps == naive bottom-up reference.

Random stratified, linear rule programs over random small digraphs —
every program the generator emits is admissible by construction (the
checker is still run; a rejection would itself be a bug), and the
compiled engine must produce exactly the extents the textbook fixpoint
does, including the k-bounded lattice's MANY saturation.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.rules import (
    CompiledRuleSet,
    DictFactSource,
    Rel,
    Rule,
    RuleProgram,
    make_vars,
    naive_fixpoint,
)
from repro.rules.dsl import NID, NODE  # noqa: E402

N, M, S = make_vars("N M S")

EDGE = Rel("edge", NODE, NODE, kind="edb")
MARK = Rel("mark", NODE, kind="edb")
SRC = Rel("src", NID, NODE, kind="edb")
SCHEMA = {"edge": EDGE, "mark": MARK, "src": SRC}

#: Derived relations R0..R3, built fresh per example (Rel identity is
#: per-program).
NUM_RELS = 4

# -- generators ----------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=7)

graphs = st.fixed_dictionaries(
    {
        "edges": st.sets(
            st.tuples(node_ids, node_ids), max_size=24
        ),
        "marks": st.sets(node_ids, max_size=4),
        "srcs": st.sets(
            st.tuples(
                st.integers(min_value=100, max_value=104), node_ids
            ),
            max_size=5,
        ),
    }
)

#: One derived relation's definition, always stratified and linear:
#: a seed premise (mark, or copy of a strictly earlier relation),
#: optional edge-propagation recursion, optional negation of a
#: strictly earlier relation.
rel_specs = st.fixed_dictionaries(
    {
        "seed": st.sampled_from(["mark", "copy"]),
        "recursive": st.sampled_from(
            [None, "successors", "predecessors"]
        ),
        "negate": st.booleans(),
    }
)

programs_strategy = st.lists(
    rel_specs, min_size=1, max_size=NUM_RELS
)


def build_program(specs):
    """Materialise a spec list into one stratified RuleProgram."""
    rels = [Rel(f"r{i}", NODE) for i in range(len(specs))]
    rules = []
    for i, spec in enumerate(specs):
        rel = rels[i]
        if spec["seed"] == "copy" and i > 0:
            seed_body = [rels[i - 1](N)]
        else:
            seed_body = [MARK(N)]
        if spec["negate"] and i > 0:
            # Negate a strictly earlier relation: stratified by
            # construction, bound by the positive seed premise.
            seed_body.append(~rels[i - 1](N))
        rules.append(Rule(rel(N), seed_body, name=f"r{i}-seed"))
        if spec["recursive"] == "successors":
            rules.append(
                Rule(rel(N), [rel(M), EDGE(M, N)], name=f"r{i}-step")
            )
        elif spec["recursive"] == "predecessors":
            rules.append(
                Rule(rel(N), [rel(M), EDGE(N, M)], name=f"r{i}-step")
            )
    return RuleProgram("random", rules, outputs=rels)


def fact_source(graph):
    return DictFactSource(
        SCHEMA,
        {
            "edge": graph["edges"],
            "mark": [(n,) for n in graph["marks"]],
            "src": graph["srcs"],
        },
    )


# -- properties ----------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(graph=graphs, specs=programs_strategy)
def test_compiled_matches_naive_on_random_programs(graph, specs):
    program = build_program(specs)
    compiled = CompiledRuleSet([program], schema=SCHEMA)
    evaluation = compiled.run(source=fact_source(graph))
    reference = naive_fixpoint(compiled.checked, fact_source(graph))
    assert evaluation.extents.data == reference.data


@settings(max_examples=80, deadline=None)
@given(graph=graphs, k=st.integers(min_value=1, max_value=3))
def test_bounded_transport_matches_naive(graph, k):
    calls = Rel("calls", NODE, NID, k=k)
    program = RuleProgram(
        "calls",
        [
            Rule(calls(N, S), [SRC(S, N)], name="seed"),
            Rule(calls(N, S), [calls(M, S), EDGE(M, N)], name="step"),
        ],
    )
    compiled = CompiledRuleSet([program], schema=SCHEMA)
    evaluation = compiled.run(source=fact_source(graph))
    reference = naive_fixpoint(compiled.checked, fact_source(graph))
    assert evaluation.extents.data == reference.data


@settings(max_examples=40, deadline=None)
@given(graph=graphs, specs=programs_strategy)
def test_explain_never_changes_extents(graph, specs):
    program = build_program(specs)
    compiled = CompiledRuleSet([program], schema=SCHEMA)
    plain = compiled.run(source=fact_source(graph))
    explained = compiled.run(source=fact_source(graph), explain=True)
    assert plain.extents.data == explained.extents.data
