"""Tests for explicit let-expansion (Sections 5 and 7 oracle)."""

import pytest

from repro.errors import AnalysisBudgetExceeded
from repro.lang import parse
from repro.lang.ast import App, Lam, Let, Var
from repro.lang.eval import evaluate
from repro.lang.letexpand import let_expand


class TestBasicExpansion:
    def test_single_use(self):
        prog = parse("let id = fn[id] x => x in id")
        expanded, origin = let_expand(prog)
        assert isinstance(expanded.root, Lam)
        # The copied label traces back to the original.
        assert origin[expanded.root.label] == "id"

    def test_two_uses_get_two_copies(self):
        prog = parse("let id = fn[id] x => x in id id")
        expanded, origin = let_expand(prog)
        assert isinstance(expanded.root, App)
        labels = [
            node.label
            for node in expanded.root.walk()
            if isinstance(node, Lam)
        ]
        assert len(labels) == 2
        assert len(set(labels)) == 2
        assert all(origin[label] == "id" for label in labels)

    def test_unused_binding_disappears(self):
        prog = parse("let dead = fn[dead] x => x in 42")
        expanded, _ = let_expand(prog)
        assert expanded.size == 1

    def test_letrec_not_expanded(self):
        prog = parse("letrec f = fn[f] x => f x in f 1")
        expanded, _ = let_expand(prog)
        from repro.lang.ast import Letrec

        assert isinstance(expanded.root, Letrec)

    def test_nested_lets(self):
        src = (
            "let a = fn[a] x => x in "
            "let b = fn[b] y => a y in b (b 1)"
        )
        prog = parse(src)
        expanded, origin = let_expand(prog)
        labels = [
            node.label
            for node in expanded.root.walk()
            if isinstance(node, Lam)
        ]
        # Two copies of b, each containing a copy of a.
        assert sorted(origin[l] for l in labels) == ["a", "a", "b", "b"]

    def test_non_function_bindings_expand_too(self):
        prog = parse("let n = 1 + 2 in n + n")
        expanded, _ = let_expand(prog)
        assert isinstance(expanded.root, type(parse("1 + 1").root))


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "src",
        [
            "let id = fn x => x in (id id) (fn z => z + 1) 41",
            "let d = fn x => x * 2 in d (d 10)",
            "let n = 21 in n + n",
            (
                "let compose = fn f => fn g => fn x => f (g x) in "
                "compose (fn a => a + 1) (fn b => b * 2) 5"
            ),
        ],
    )
    def test_expansion_preserves_value(self, src):
        prog = parse(src)
        expanded, _ = let_expand(prog)
        assert evaluate(prog).value == evaluate(expanded).value


class TestBudget:
    def test_exponential_expansion_trips_budget(self):
        # The paper's footnote family: f_{i+1} = \x.(f_i (f_i x)) has
        # exponential let-expansion.
        depth = 12
        lines = ["let f0 = fn x => x in"]
        for i in range(1, depth + 1):
            lines.append(
                f"let f{i} = fn y{i} => f{i-1} (f{i-1} y{i}) in"
            )
        lines.append(f"f{depth}")
        prog = parse("\n".join(lines))
        with pytest.raises(AnalysisBudgetExceeded):
            let_expand(prog, size_budget=10_000)

    def test_budget_allows_moderate_expansion(self):
        prog = parse("let id = fn x => x in id id")
        expanded, _ = let_expand(prog, size_budget=100)
        assert expanded.size > 0
