"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

DEMO = "let id = fn[id] x => x in id (fn[g] y => y)"
EFFECTS = "let f = fn[noisy] x => print x in f 1"
DT = (
    "datatype intlist = Nil | Cons of int * intlist;\n"
    "letrec len = fn[len] xs => case xs of Nil => 0 "
    "| Cons(h, t) => 1 + len t end in len (Cons(1, Nil))"
)


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.ml"
    path.write_text(DEMO)
    return str(path)


class TestAnalyze:
    def test_table_output(self, demo_file, capsys):
        assert main(["analyze", demo_file]) == 0
        out = capsys.readouterr().out
        assert "may call" in out
        assert "id" in out

    def test_json_output(self, demo_file, capsys):
        assert main(["analyze", demo_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["program"]["size"] == 7
        assert set(document["program"]["labels"]) == {"id", "g"}
        (site,) = document["call_graph"].values()
        assert site["callees"] == ["id"]

    @pytest.mark.parametrize(
        "algorithm",
        ["standard", "dtc", "equality", "hybrid", "polyvariant"],
    )
    def test_all_algorithms(self, demo_file, capsys, algorithm):
        assert main(
            ["analyze", demo_file, "--algorithm", algorithm]
        ) == 0

    def test_datatype_program(self, tmp_path, capsys):
        path = tmp_path / "list.ml"
        path.write_text(DT)
        assert main(["analyze", str(path)]) == 0

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent.ml"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.ml"
        path.write_text("let = ")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_label_query_lists_occurrences(self, demo_file, capsys):
        assert main(["query", demo_file, "--label", "g"]) == 0
        out = capsys.readouterr().out
        assert "fn y => y" in out

    def test_membership_query(self, demo_file, capsys):
        assert main(
            ["query", demo_file, "--label", "id", "--expr", "0"]
        ) == 0
        assert capsys.readouterr().out.strip() in ("yes", "no")

    def test_labels_of_query(self, demo_file, capsys):
        assert main(["query", demo_file, "--expr", "0"]) == 0

    def test_query_without_args_fails(self, demo_file, capsys):
        assert main(["query", demo_file]) == 1


class TestApps:
    def test_effects(self, tmp_path, capsys):
        path = tmp_path / "eff.ml"
        path.write_text(EFFECTS)
        assert main(["effects", str(path)]) == 0
        assert "effectful" in capsys.readouterr().out

    def test_klimited(self, demo_file, capsys):
        assert main(["klimited", demo_file, "-k", "1"]) == 0
        assert "callees" in capsys.readouterr().out

    def test_called_once(self, demo_file, capsys):
        assert main(["called-once", demo_file]) == 0
        out = capsys.readouterr().out
        assert "once" in out and "never" in out

    def test_typecheck(self, demo_file, capsys):
        assert main(["typecheck", demo_file]) == 0
        assert "P_7" in capsys.readouterr().out

    def test_typecheck_rejects_untypeable(self, tmp_path, capsys):
        path = tmp_path / "omega.ml"
        path.write_text("(fn x => x x) (fn y => y y)")
        assert main(["typecheck", str(path)]) == 1


class TestEvalAndDot:
    def test_eval(self, tmp_path, capsys):
        path = tmp_path / "run.ml"
        path.write_text("let u = print 1 in 2 + 3")
        assert main(["eval", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1" in out and "=> 5" in out

    def test_eval_fuel(self, tmp_path, capsys):
        path = tmp_path / "loop.ml"
        path.write_text("letrec f = fn x => f x in f 0")
        assert main(["eval", str(path), "--fuel", "100"]) == 1

    def test_dot_stdout(self, demo_file, capsys):
        assert main(["dot", demo_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "doublecircle" in out

    def test_dot_to_file(self, demo_file, tmp_path, capsys):
        target = tmp_path / "g.dot"
        assert main(["dot", demo_file, "-o", str(target)]) == 0
        assert target.read_text().startswith("digraph")


class TestObservabilityFlags:
    def test_metrics_written_and_valid(self, demo_file, tmp_path, capsys):
        from repro.obs import validate_metrics

        target = tmp_path / "metrics.json"
        assert main(["analyze", demo_file, "--metrics", str(target)]) == 0
        document = json.loads(target.read_text())
        validate_metrics(document)
        assert document["engine"]["name"] == "subtransitive"
        # The document reflects this invocation's table queries.
        assert document["queries"]["count"] >= 1
        assert f"wrote metrics to {target}" in capsys.readouterr().err

    def test_trace_written_as_jsonl(self, demo_file, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["analyze", demo_file, "--trace", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert events[0] == {
            "seq": 0,
            "kind": "phase",
            "phase": "build",
            "action": "start",
        }
        assert any(event["kind"] == "rule" for event in events)
        err = capsys.readouterr().err
        assert f"wrote trace to {target} ({len(events)} events)" in err

    def test_metrics_with_hybrid(self, demo_file, tmp_path):
        from repro.obs import validate_metrics

        target = tmp_path / "metrics.json"
        assert main(
            ["analyze", demo_file, "--algorithm", "hybrid",
             "--metrics", str(target)]
        ) == 0
        document = validate_metrics(json.loads(target.read_text()))
        assert document["engine"]["driver"] == "hybrid"

    def test_metrics_rejected_for_uninstrumented_algorithm(
        self, demo_file, tmp_path, capsys
    ):
        target = tmp_path / "metrics.json"
        assert main(
            ["analyze", demo_file, "--algorithm", "standard",
             "--metrics", str(target)]
        ) == 1
        assert "--metrics/--trace require" in capsys.readouterr().err
        assert not target.exists()


CLEAN = "let f = fn[f] x => x in (f 1, f 2)"
OMEGA = "(fn[w] x => x x) (fn[w2] y => y y)"


class TestLint:
    @pytest.fixture()
    def clean_file(self, tmp_path):
        path = tmp_path / "clean.ml"
        path.write_text(CLEAN)
        return str(path)

    def test_clean_program_exits_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, demo_file, capsys):
        assert main(["lint", demo_file]) == 1
        out = capsys.readouterr().out
        # id is called once; g is never called.
        assert "L003" in out and "'id'" in out
        assert "L001" in out and "'g'" in out

    def test_severity_filter_can_clean_the_run(self, demo_file, capsys):
        assert main(["lint", demo_file, "--severity", "error"]) == 0
        assert "L001" not in capsys.readouterr().out

    def test_rules_filter(self, demo_file, capsys):
        assert main(["lint", demo_file, "--rules", "L003"]) == 1
        out = capsys.readouterr().out
        assert "L003" in out and "L001" not in out

    def test_unknown_rule_exits_two(self, demo_file, capsys):
        assert main(["lint", demo_file, "--rules", "L999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_envelope(self, demo_file, clean_file, capsys):
        assert main(
            ["lint", demo_file, clean_file, "--format", "json"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.lint/1"
        assert document["errors"] == []
        assert document["summary"]["files"] == 2
        assert document["summary"]["exit_code"] == 1
        by_path = {f["path"]: f for f in document["files"]}
        assert by_path[clean_file]["findings"] == []
        assert by_path[demo_file]["engine"] == "subtransitive"
        assert document["summary"]["by_rule"].keys() >= {"L001", "L003"}

    def test_missing_file_exits_two(self, demo_file, capsys):
        assert main(["lint", demo_file, "/nonexistent.ml"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_input_set_text_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "no inputs" in capsys.readouterr().err

    def test_empty_input_set_json_emits_valid_envelope(self, capsys):
        # Regression: machine consumers always get the schema they
        # asked for, even when the corpus expands to nothing.
        assert main(["lint", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.lint/1"
        assert document["files"] == []
        assert document["errors"] == []
        assert document["summary"] == {
            "files": 0,
            "findings": 0,
            "by_rule": {},
            "exit_code": 0,
        }
        assert document["engine"]["name"] == "subtransitive"

    def test_empty_directory_json_emits_valid_envelope(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "corpus"
        empty.mkdir()
        assert main(["lint", str(empty), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["files"] == 0

    def test_rules_impl_matches_hand(self, demo_file, capsys):
        assert main(["lint", demo_file]) == 1
        hand = capsys.readouterr().out
        assert main(["lint", demo_file, "--impl", "rules"]) == 1
        assert capsys.readouterr().out == hand

    def test_explain_prints_derivations(self, tmp_path, capsys):
        path = tmp_path / "escape.ml"
        path.write_text("let f = fn[esc] x => x in print f")
        assert main(["lint", str(path), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "L004" in out
        assert "derivation of L004" in out
        assert "escaping-fun" in out

    def test_explain_json_carries_derivations(self, tmp_path, capsys):
        path = tmp_path / "escape.ml"
        path.write_text("let f = fn[esc] x => x in print f")
        assert main(
            ["lint", str(path), "--explain", "--format", "json"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        (entry,) = document["files"]
        escapes = [
            f for f in entry["findings"] if f["rule"] == "L004"
        ]
        assert escapes and escapes[0]["derivation"]

    def test_parse_error_recorded_in_json(self, tmp_path, capsys):
        path = tmp_path / "bad.ml"
        path.write_text("let = ")
        assert main(["lint", str(path), "--format", "json"]) == 2
        document = json.loads(capsys.readouterr().out)
        (error,) = document["errors"]
        assert error["path"] == str(path)
        assert document["summary"]["exit_code"] == 2

    def test_sanitize_flag_reports(self, demo_file, capsys):
        assert main(["lint", demo_file, "--sanitize"]) == 1
        # The report rides along in the text output (and in the JSON
        # document under "sanitize").
        assert "sanitize: ok" in capsys.readouterr().out

    def test_untypeable_program_falls_back(self, tmp_path, capsys):
        path = tmp_path / "omega.ml"
        path.write_text(OMEGA)
        assert main(["lint", str(path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        (entry,) = document["files"]
        assert entry["engine"] == "standard"
        assert entry["fallback_reason"] == "budget"
        assert all(
            f["via"] == "standard" for f in entry["findings"]
        )

    def test_subtransitive_algorithm_terminates_on_untypeable(
        self, tmp_path, capsys
    ):
        # Forcing LC' on an untypeable program still terminates (the
        # depth cap truncates the operator towers) but may miss flows
        # -- which is exactly why the default is the hybrid driver.
        path = tmp_path / "omega.ml"
        path.write_text(OMEGA)
        assert main(
            ["lint", str(path), "--algorithm", "subtransitive"]
        ) == 1

    def test_metrics_requires_single_file(
        self, demo_file, clean_file, tmp_path, capsys
    ):
        target = tmp_path / "m.json"
        assert main(
            ["lint", demo_file, clean_file, "--metrics", str(target)]
        ) == 2
        assert "exactly one input file" in capsys.readouterr().err

    def test_metrics_include_lint_sections(
        self, demo_file, tmp_path, capsys
    ):
        from repro.obs import validate_metrics

        target = tmp_path / "m.json"
        assert main(
            ["lint", demo_file, "--metrics", str(target)]
        ) == 1
        document = validate_metrics(json.loads(target.read_text()))
        timers = document["registry"]["timers"]
        assert "lint.pass.L001" in timers
        counters = document["registry"]["counters"]
        assert counters["queries.labels_of"] == 0


class TestSanitizeFlag:
    def test_analyze_sanitize(self, demo_file, capsys):
        assert main(["analyze", demo_file, "--sanitize"]) == 0
        assert "sanitize: ok" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["query", "--label", "g"],
            ["effects"],
            ["klimited", "-k", "1"],
            ["called-once"],
            ["dot"],
        ],
    )
    def test_other_entry_points_sanitize(self, demo_file, capsys, argv):
        command, rest = argv[0], argv[1:]
        assert main(
            [command, demo_file] + rest + ["--sanitize"]
        ) == 0
        assert "sanitize: ok" in capsys.readouterr().err


class TestRulesCommand:
    def test_list_shows_programs_and_fingerprint(self, capsys):
        assert main(["rules", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("lint-l002", "lint-l004", "app-called-once"):
            assert name in out
        assert "fingerprint:" in out

    def test_show_renders_program_and_report(self, capsys):
        assert main(["rules", "show", "lint-l002"]) == 0
        out = capsys.readouterr().out
        assert "program lint-l002" in out
        assert "rule stuck-site:" in out
        assert "level 0:" in out

    def test_show_unknown_program_exits_two(self, capsys):
        assert main(["rules", "show", "nonexistent"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_check_shipped_programs_pass(self, capsys):
        assert main(["rules", "check"]) == 0
        assert "stratified" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "fixture, expected",
        [
            ("ill-stratified", "not stratified"),
            ("nonlinear-pairs", "not bounded by O(n+e)"),
            ("unbounded-join", "no join ordering"),
            ("mutual-recursion", "mutually recursive"),
            ("unsafe-head", "range restriction"),
        ],
    )
    def test_check_fixture_rejected_actionably(
        self, capsys, fixture, expected
    ):
        assert main(["rules", "check", "--fixture", fixture]) == 2
        assert expected in capsys.readouterr().err

    def test_called_once_rules_impl(self, demo_file, capsys):
        assert main(["called-once", demo_file]) == 0
        hand = capsys.readouterr().out
        assert main(
            ["called-once", demo_file, "--impl", "rules"]
        ) == 0
        rules = capsys.readouterr().out
        # The report body is identical; only the timing line differs.
        strip = lambda text: [
            line for line in text.splitlines() if " in " not in line
        ]
        assert strip(hand) == strip(rules)


class TestDaemonCli:
    """`repro daemon` / `repro client` against a thread-hosted daemon."""

    @pytest.fixture()
    def endpoint(self, tmp_path):
        import asyncio
        import os
        import threading

        from repro.daemon import DaemonClient, DaemonServer

        path = str(tmp_path / "repro.sock")
        loop = asyncio.new_event_loop()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(
                DaemonServer(socket_path=path).serve_forever()
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        for _ in range(200):
            if os.path.exists(path):
                break
            threading.Event().wait(0.01)
        yield path
        try:
            with DaemonClient(socket_path=path) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=10)

    def test_define_query_status_stop(self, endpoint, capsys):
        assert main([
            "client", "define", "--socket", endpoint,
            "--project", "p", "--name", "id",
            "--source", "fn[l] x => x",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["delta"] is True
        assert main([
            "client", "query", "--socket", endpoint,
            "--project", "p", "--name", "id",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["labels"] == ["l"]
        assert main(["daemon", "status", "--socket", endpoint]) == 0
        out = capsys.readouterr().out
        assert "warm projects" in out and "p:" in out
        assert main(["daemon", "stop", "--socket", endpoint]) == 0

    def test_client_analyze_matches_cold_analyze_json(
        self, endpoint, tmp_path, capsys
    ):
        main([
            "client", "define", "--socket", endpoint,
            "--project", "p", "--name", "id", "--source", "fn x => x",
        ])
        main([
            "client", "define", "--socket", endpoint,
            "--project", "p", "--name", "use", "--source", "id id",
        ])
        capsys.readouterr()
        assert main([
            "client", "analyze", "--socket", endpoint, "--project", "p",
        ]) == 0
        warm = capsys.readouterr().out
        assert main([
            "client", "source", "--socket", endpoint, "--project", "p",
        ]) == 0
        cold_file = tmp_path / "cold.ml"
        cold_file.write_text(capsys.readouterr().out)
        assert main(["analyze", str(cold_file), "--json"]) == 0
        assert capsys.readouterr().out == warm

    def test_define_from_file(self, endpoint, tmp_path, capsys):
        src = tmp_path / "def.ml"
        src.write_text("fn[ff] x => x")
        assert main([
            "client", "define", "--socket", endpoint,
            "--project", "p", "--name", "f", "--file", str(src),
        ]) == 0
        assert json.loads(capsys.readouterr().out)["delta"] is True

    def test_endpoint_is_required(self, capsys):
        assert main(["client", "status"]) == 1
        assert "--socket" in capsys.readouterr().err

    def test_daemon_status_json(self, endpoint, capsys):
        assert main(["daemon", "status", "--socket", endpoint, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert "projects" in status and "metrics" in status
