"""Tests for the reachability query layer (Algorithms 1-2 etc.)."""

import pytest

from repro.core.queries import analyze_subtransitive
from repro.cfa.standard import analyze_standard
from repro.errors import QueryError, ScopeError
from repro.lang import parse

DT = "datatype intlist = Nil | Cons of int * intlist;\n"


def both(src):
    prog = parse(src)
    return prog, analyze_subtransitive(prog), analyze_standard(prog)


class TestAlgorithm1:
    def test_membership_positive(self):
        prog, sub, _ = both("(fn[f] x => x) (fn[g] y => y)")
        assert sub.is_label_in("g", prog.root)

    def test_membership_negative(self):
        prog, sub, _ = both("(fn[f] x => x) (fn[g] y => y)")
        assert not sub.is_label_in("f", prog.root)

    def test_unknown_label_raises(self):
        prog, sub, _ = both("fn[f] x => x")
        with pytest.raises(ScopeError):
            sub.is_label_in("nope", prog.root)


class TestAlgorithm2:
    def test_labels_of_matches_standard(self):
        prog, sub, std = both(
            "let id = fn[id] x => x in (id id) (fn[k] z => z)"
        )
        for node in prog.nodes:
            assert sub.labels_of(node) == std.labels_of(node)

    def test_labels_of_var(self):
        prog, sub, _ = both("(fn[f] x => x) (fn[g] y => y)")
        assert sub.labels_of_var("x") == {"g"}

    def test_tokens_include_records(self):
        prog, sub, _ = both("let p = (1, 2) in p")
        assert len(sub.records_of(prog.root)) == 1

    def test_tokens_include_constructors(self):
        prog, sub, _ = both(DT + "let l = Cons(1, Nil) in l")
        cons = sub.constructors_of(prog.root)
        assert {c.cname for c in cons} >= {"Cons"}


class TestReverseQuery:
    def test_expressions_with_label_matches_standard(self):
        prog, sub, std = both("(fn[f] x => x x) (fn[g] y => y)")
        for label in prog.labels:
            ours = {e.nid for e in sub.expressions_with_label(label)}
            theirs = {e.nid for e in std.expressions_with_label(label)}
            assert ours == theirs, label

    def test_unknown_label(self):
        prog, sub, _ = both("fn[f] x => x")
        with pytest.raises(ScopeError):
            sub.expressions_with_label("ghost")


class TestAllLabelSets:
    def test_matches_standard_pointwise(self):
        prog, sub, std = both(
            "let c = ref (fn[a] x => x) in "
            "let u = c := (fn[b] y => y) in (!c) 1"
        )
        assert sub.all_label_sets() == std.all_label_sets()

    def test_call_graph_matches(self):
        prog, sub, std = both(
            "let h = fn[h] f => f 1 in h (fn[inc] x => x + 1)"
        )
        assert sub.call_graph() == std.call_graph()


class TestErrors:
    def test_foreign_expression_rejected(self):
        prog, sub, _ = both("fn[f] x => x")
        other = parse("fn[g] y => y")
        with pytest.raises(QueryError):
            sub.labels_of(other.root)

    def test_stats_exposed(self):
        prog, sub, _ = both("fn[f] x => x")
        assert sub.stats.build_nodes > 0
