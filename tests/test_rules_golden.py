"""Golden equivalence: rule-program ports == hand-written originals.

The declarative twins of every ported lint pass (L001-L005,
F001-F004) and the called-once app must agree with the retained
hand-written implementations on the whole example corpus, on both
graph backends — identical findings (the full serialised envelope,
wall-clock and impl provenance normalised away) and identical
classifications.
"""

import glob
import os

import pytest

from repro.apps.called_once import called_once
from repro.core.lc import build_subtransitive_graph
from repro.lang import parse
from repro.lint import run_lints
from repro.rules.programs import rules_called_once

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples"
)
EXAMPLE_FILES = sorted(
    glob.glob(os.path.join(EXAMPLES_DIR, "*.lam"))
)
EXAMPLE_IDS = [os.path.basename(path) for path in EXAMPLE_FILES]

BACKENDS = ["object", "csr"]


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read())


#: Every pass with a rule-program twin.
PORTED = (
    "L001", "L002", "L003", "L004", "L005",
    "F001", "F002", "F003", "F004",
)


def normalised(result):
    """The lint result's serialised document minus wall-clock noise
    and the per-rule impl provenance (the one key rules mode adds)."""
    document = result.to_dict()
    document.pop("pass_seconds", None)
    document.pop("impl", None)
    return document


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=EXAMPLE_IDS)
class TestLintTwins:
    def test_envelopes_identical(self, path, backend):
        program = load(path)
        sub = build_subtransitive_graph(
            program, graph_backend=backend
        )
        hand = run_lints(program, sub, impl="hand")
        rules = run_lints(program, sub, impl="rules")
        assert normalised(hand) == normalised(rules)

    def test_called_once_identical(self, path, backend):
        program = load(path)
        sub = build_subtransitive_graph(
            program, graph_backend=backend
        )
        hand = called_once(program, sub=sub)
        rules = rules_called_once(program, sub=sub)
        assert hand.once_labels == rules.once_labels
        assert hand.never_called == rules.never_called
        assert hand.many_callers == rules.many_callers
        for label in hand.once_labels:
            assert hand.unique_site(label) is rules.unique_site(label)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=EXAMPLE_IDS)
def test_explain_attaches_derivations_to_ported_findings(path):
    program = load(path)
    sub = build_subtransitive_graph(program)
    result = run_lints(program, sub, explain=True)
    ported = [f for f in result.findings if f.rule in PORTED]
    for finding in ported:
        # A verdict on a node the graph never built has no derivation
        # to attach (the rule twin reports it from the AST view).
        if finding.derivation is None:
            continue
        assert finding.derivation, finding.rule
        for step in finding.derivation:
            assert set(step) == {"rule", "fact", "premises"}
    # Exempt (T-series) findings never grow the key: the envelope
    # stays byte-stable for consumers that don't ask for provenance.
    for finding in result.findings:
        if finding.rule not in PORTED:
            assert "derivation" not in finding.to_dict()


def test_explain_implies_rules_impl():
    program = parse("let f = fn[f] x => x in f 1")
    sub = build_subtransitive_graph(program)
    result = run_lints(program, sub, impl="hand", explain=True)
    assert any(f.derivation for f in result.findings)
    # explain forces the rule twins; minus the provenance it asked
    # for, the envelope stays equivalent.
    explained = normalised(result)
    for finding in explained["findings"]:
        finding.pop("derivation", None)
    hand = run_lints(program, sub, impl="hand")
    assert explained == normalised(hand)


def test_unknown_impl_rejected():
    program = parse("let f = fn[f] x => x in f 1")
    sub = build_subtransitive_graph(program)
    with pytest.raises(ValueError):
        run_lints(program, sub, impl="sql")
