"""Integration tests: every shipped example runs green.

Examples are the adoption surface; they are executed as subprocesses
exactly as a user would run them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, stdin=""):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "standard (cubic) CFA agrees pointwise: True" in result.stdout
        assert "analysis is sound w.r.t. this run: True" in result.stdout

    def test_inlining_advisor(self):
        result = run_example("inlining_advisor.py")
        assert result.returncode == 0, result.stderr
        assert "inline for free" in result.stdout
        assert "call-site report" in result.stdout

    def test_effects_audit(self):
        result = run_example("effects_audit.py")
        assert result.returncode == 0, result.stderr
        assert "linear colouring == quadratic baseline: True" in result.stdout

    def test_polyvariance_demo(self):
        result = run_example("polyvariance_demo.py")
        assert result.returncode == 0, result.stderr
        assert "let-expansion oracle agrees" in result.stdout
        assert "ran(e) -> dom(e)" in result.stdout

    def test_scaling_demo_small(self):
        result = run_example("scaling_demo.py", "40")
        assert result.returncode == 0, result.stderr
        assert "empirical scaling exponents" in result.stdout

    def test_incremental_repl_scripted(self):
        script = (
            "def inc = fn[inc] x => x + 1\n"
            "who inc\n"
            "run inc 41\n"
            "call inc\n"
            "stats\n"
            "quit\n"
        )
        result = run_example("incremental_repl.py", stdin=script)
        assert result.returncode == 0, result.stderr
        assert "=> 42" in result.stdout
        assert "defined inc" in result.stdout

    def test_incremental_repl_handles_errors(self):
        script = "who ghost\ndef broken = (\nrun inc 1\n"
        result = run_example("incremental_repl.py", stdin=script)
        assert result.returncode == 0
        assert "error" in result.stdout
