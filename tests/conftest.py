"""Test-session configuration."""

from repro._util import ensure_recursion_limit

# The language front end recurses over deep ASTs; raise the limit once
# up front so hypothesis does not observe a mid-test change.
ensure_recursion_limit()
