"""The flagship property-based tests: the paper's correctness claims
as executable properties over randomly generated well-typed programs.

* **Proposition 1/2 (exactness)**: LC'-reachability computes exactly
  standard CFA (checked pointwise, against both the constraint-based
  and the DTC implementations).
* **Soundness**: the labels observed by the reference evaluator are
  contained in every analysis's answer.
* **Precision ordering**: evaluator ⊆ polyvariant ⊆ monovariant
  subtransitive ⊆ equality-based.
* **Linearity witness**: LC' node/edge counts stay within a constant
  factor of program size on generated programs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfa.dtc import analyze_dtc
from repro.cfa.equality import analyze_equality
from repro.cfa.standard import analyze_standard
from repro.core.polyvariant import analyze_polyvariant
from repro.core.queries import analyze_subtransitive
from repro.errors import AnalysisBudgetExceeded, EvaluationError, FuelExhausted
from repro.lang.eval import evaluate
from repro.workloads.generators import random_typed_program

seeds = st.integers(min_value=0, max_value=1_000_000)


@settings(max_examples=80, deadline=None)
@given(seed=seeds)
def test_subtransitive_equals_standard_without_datatypes(seed):
    """Propositions 1-2: exact agreement on the exact node grammar."""
    prog = random_typed_program(seed, fuel=20, use_datatypes=False)
    std = analyze_standard(prog)
    sub = analyze_subtransitive(prog)
    for node in prog.nodes:
        assert std.labels_of(node) == sub.labels_of(node), (
            seed,
            node.nid,
        )


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_subtransitive_sound_and_tight_with_datatypes(seed):
    """With datatypes the default congruence may only *add* labels."""
    prog = random_typed_program(seed, fuel=20, use_datatypes=True)
    std = analyze_standard(prog)
    sub = analyze_subtransitive(prog)
    for node in prog.nodes:
        assert std.labels_of(node) <= sub.labels_of(node), (
            seed,
            node.nid,
        )


@settings(max_examples=50, deadline=None)
@given(seed=seeds)
def test_dtc_equals_standard(seed):
    prog = random_typed_program(seed, fuel=20)
    std = analyze_standard(prog)
    dtc = analyze_dtc(prog)
    for node in prog.nodes:
        assert std.labels_of(node) == dtc.labels_of(node), (seed, node.nid)


@settings(max_examples=50, deadline=None)
@given(seed=seeds)
def test_equality_cfa_over_approximates(seed):
    prog = random_typed_program(seed, fuel=20)
    std = analyze_standard(prog)
    eq = analyze_equality(prog)
    for node in prog.nodes:
        assert std.labels_of(node) <= eq.labels_of(node), (seed, node.nid)


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_runtime_soundness(seed):
    """Every label the evaluator observes is predicted by every
    analysis (CFA is 'a conservative approximation of the abstractions
    that can be encountered at each expression')."""
    prog = random_typed_program(seed, fuel=16)
    try:
        result = evaluate(prog, fuel=4_000)
    except (FuelExhausted, EvaluationError):
        return  # divergent or value-restriction artefact: skip
    analyses = [
        analyze_standard(prog),
        analyze_subtransitive(prog),
        analyze_equality(prog),
    ]
    for node in prog.nodes:
        observed = result.trace.labels_at(node)
        if not observed:
            continue
        for analysis in analyses:
            assert observed <= analysis.labels_of(node), (
                seed,
                node.nid,
                type(analysis).__name__,
            )


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_polyvariant_refines_monovariant(seed):
    prog = random_typed_program(seed, fuel=16, use_datatypes=False)
    mono = analyze_subtransitive(prog)
    try:
        poly = analyze_polyvariant(prog, instance_budget=2_000)
    except AnalysisBudgetExceeded:
        return
    for node in prog.nodes:
        assert poly.labels_of(node) <= mono.labels_of(node), (
            seed,
            node.nid,
        )


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_lc_size_is_linear_in_program_size(seed):
    """The subtransitive graph stays within a constant factor of the
    program size on generated bounded-type programs."""
    prog = random_typed_program(seed, fuel=25, use_datatypes=False)
    sub = analyze_subtransitive(prog)
    stats = sub.stats
    # Generated programs have small types; 40x is far above the
    # observed constant (~3) but far below quadratic blow-up.
    assert stats.total_nodes <= 40 * prog.size + 200, (
        seed,
        stats.total_nodes,
        prog.size,
    )


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_reverse_query_consistent_with_forward(seed):
    """{e : l in L(e)} inverts labels_of."""
    prog = random_typed_program(seed, fuel=14)
    sub = analyze_subtransitive(prog)
    for lam in prog.abstractions[:4]:
        backwards = {e.nid for e in sub.expressions_with_label(lam.label)}
        forwards = {
            node.nid
            for node in prog.nodes
            if lam.label in sub.labels_of(node)
        }
        assert backwards == forwards, (seed, lam.label)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_all_label_sets_consistent_with_pointwise(seed):
    prog = random_typed_program(seed, fuel=14)
    sub = analyze_subtransitive(prog)
    table = sub.all_label_sets()
    for node in prog.nodes:
        assert table[node.nid] == sub.labels_of(node), (seed, node.nid)
