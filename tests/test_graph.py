"""Tests for the graph substrate (digraph, reachability, SCC, closure,
union-find), including cross-checks against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Digraph,
    UnionFind,
    condensation,
    reachable_from,
    reachable_to,
    reaches,
    strongly_connected_components,
    transitive_closure,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    max_size=60,
)


def build(edges):
    g = Digraph()
    g.add_edges(edges)
    return g


class TestDigraph:
    def test_empty(self):
        g = Digraph()
        assert len(g) == 0
        assert g.edge_count == 0

    def test_add_edge_returns_new_flag(self):
        g = Digraph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False
        assert g.edge_count == 1

    def test_add_node_idempotent(self):
        g = Digraph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1

    def test_successors_and_predecessors(self):
        g = build([(1, 2), (1, 3), (4, 2)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(2) == {1, 4}

    def test_unknown_node_has_empty_neighbourhoods(self):
        g = Digraph()
        assert g.successors("ghost") == frozenset()
        assert g.predecessors("ghost") == frozenset()

    def test_degrees(self):
        g = build([(1, 2), (1, 3)])
        assert g.out_degree(1) == 2
        assert g.in_degree(3) == 1

    def test_has_edge(self):
        g = build([(1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_reverse(self):
        g = build([(1, 2), (2, 3)])
        r = g.reverse()
        assert r.has_edge(2, 1) and r.has_edge(3, 2)
        assert r.node_count == g.node_count

    def test_copy_is_independent(self):
        g = build([(1, 2)])
        c = g.copy()
        c.add_edge(2, 3)
        assert not g.has_edge(2, 3)

    def test_edges_iteration(self):
        g = build([(1, 2), (2, 3)])
        assert set(g.edges()) == {(1, 2), (2, 3)}

    def test_contains(self):
        g = build([(1, 2)])
        assert 1 in g and 99 not in g


class TestReachability:
    def test_reachable_from_includes_sources(self):
        g = build([(1, 2)])
        assert reachable_from(g, [1]) == {1, 2}

    def test_reachable_from_multiple_sources(self):
        g = build([(1, 2), (3, 4)])
        assert reachable_from(g, [1, 3]) == {1, 2, 3, 4}

    def test_reachable_respects_direction(self):
        g = build([(1, 2)])
        assert reachable_from(g, [2]) == {2}

    def test_reachable_to(self):
        g = build([(1, 2), (2, 3)])
        assert reachable_to(g, [3]) == {1, 2, 3}

    def test_reaches(self):
        g = build([(1, 2), (2, 3)])
        assert reaches(g, 1, 3)
        assert not reaches(g, 3, 1)
        assert reaches(g, 2, 2)

    def test_custom_follow(self):
        g = build([(1, 2)])
        # following predecessors from 2 finds 1.
        assert reachable_from(g, [2], follow=g.predecessors) == {1, 2}

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists, source=st.integers(0, 14))
    def test_matches_networkx(self, edges, source):
        g = build(edges + [(source, source)])
        ng = nx.DiGraph(edges + [(source, source)])
        ours = reachable_from(g, [source])
        theirs = nx.descendants(ng, source) | {source}
        assert ours == theirs


class TestTarjan:
    def test_single_cycle(self):
        g = build([(1, 2), (2, 3), (3, 1)])
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert set(comps[0]) == {1, 2, 3}

    def test_dag_has_singletons(self):
        g = build([(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_reverse_topological_order(self):
        g = build([(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        order = [c[0] for c in comps]
        # sinks first
        assert order.index(3) < order.index(1)

    def test_condensation(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        dag, component_of = condensation(g)
        assert component_of[1] == component_of[2]
        assert component_of[3] != component_of[1]
        assert dag.edge_count == 1

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists)
    def test_matches_networkx(self, edges):
        g = build(edges)
        ng = nx.DiGraph(edges)
        ng.add_nodes_from(g.nodes())
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {
            frozenset(c)
            for c in nx.strongly_connected_components(ng)
        }
        assert ours == theirs


class TestTransitiveClosure:
    def test_chain(self):
        g = build([(1, 2), (2, 3)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 3)
        assert not tc.has_edge(1, 1)

    def test_cycle_members_reach_themselves(self):
        g = build([(1, 2), (2, 1)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 1)
        assert tc.has_edge(2, 2)

    def test_self_loop(self):
        g = build([(1, 1)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 1)

    def test_reflexive_mode(self):
        g = build([(1, 2)])
        tc = transitive_closure(g, reflexive=True)
        assert tc.has_edge(1, 1) and tc.has_edge(2, 2)

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists)
    def test_matches_networkx(self, edges):
        g = build(edges)
        ng = nx.DiGraph(edges)
        ng.add_nodes_from(g.nodes())
        ours = set(transitive_closure(g).edges())
        theirs = set(nx.transitive_closure(ng).edges())
        assert ours == theirs


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind()
        assert not uf.same(1, 2)

    def test_union_then_same(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.same(1, 2)

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.same(1, 3)

    def test_union_count_ignores_redundant(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 1)
        assert uf.union_count == 1

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.find("c")
        groups = uf.groups()
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 2]

    def test_len_counts_registered(self):
        uf = UnionFind()
        uf.find("x")
        uf.union("y", "z")
        assert len(uf) == 3

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
        )
    )
    def test_equivalence_closure_property(self, pairs):
        uf = UnionFind()
        for a, c in pairs:
            uf.union(a, c)
        # Build the expected equivalence relation with networkx.
        ng = nx.Graph(pairs)
        for a in range(10):
            ng.add_node(a)
        for comp in nx.connected_components(ng):
            comp = list(comp)
            for x in comp[1:]:
                assert uf.same(comp[0], x)


# -- backend twins ---------------------------------------------------------

from repro.graph import CSRDigraph, GRAPH_BACKENDS, Interner, make_graph

BACKENDS = [Digraph, CSRDigraph]


def build_backend(make, edges):
    g = make()
    g.add_edges(edges)
    return g


class TestMakeGraph:
    def test_backends_by_flag_value(self):
        assert isinstance(make_graph("object"), Digraph)
        assert isinstance(make_graph("csr"), CSRDigraph)
        assert set(GRAPH_BACKENDS) == {"object", "csr"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_graph("adjacency-matrix")


class TestBackendContract:
    """Behaviours the object graph and its CSR twin must share."""

    @pytest.mark.parametrize("make", BACKENDS)
    def test_neighbour_views_equal_sets(self, make):
        g = build_backend(make, [(1, 2), (1, 3), (4, 2)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(2) == {1, 4}
        assert set(g.successors(1) | g.predecessors(2)) == {1, 2, 3, 4}

    @pytest.mark.parametrize("make", BACKENDS)
    def test_neighbour_views_refuse_mutation(self, make):
        g = build_backend(make, [(1, 2)])
        for view in (g.successors(1), g.predecessors(2)):
            with pytest.raises(AttributeError):
                view.add(99)
            with pytest.raises(AttributeError):
                view.discard(2)
        # The attempted mutations changed nothing.
        assert g.successors(1) == {2}
        assert g.predecessors(2) == {1}
        assert g.edge_count == 1

    @pytest.mark.parametrize("make", BACKENDS)
    def test_ghost_neighbourhoods_empty(self, make):
        g = make()
        assert set(g.successors("ghost")) == set()
        assert set(g.predecessors("ghost")) == set()
        assert g.out_degree("ghost") == 0
        assert g.in_degree("ghost") == 0

    @pytest.mark.parametrize("make", BACKENDS)
    def test_add_edge_dedup_flag(self, make):
        g = make()
        assert g.add_edge("a", "b") is True
        assert g.add_edge("a", "b") is False
        assert g.edge_count == 1
        assert g.node_count == 2

    @pytest.mark.parametrize("make", BACKENDS)
    def test_reverse_and_copy(self, make):
        g = build_backend(make, [(1, 2), (2, 3)])
        r = g.reverse()
        assert r.has_edge(2, 1) and r.has_edge(3, 2)
        c = g.copy()
        c.add_edge(3, 4)
        assert not g.has_edge(3, 4)

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists)
    def test_structure_agrees(self, edges):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        assert csr.node_count == obj.node_count
        assert csr.edge_count == obj.edge_count
        assert set(csr.nodes()) == set(obj.nodes())
        assert set(csr.edges()) == set(obj.edges())
        for node in obj.nodes():
            assert csr.successors(node) == obj.successors(node)
            assert csr.predecessors(node) == obj.predecessors(node)


class TestReachesGhostNodes:
    """``reaches`` endpoint semantics: no empty path through a node
    the graph does not contain (regression tests for the ghost-node
    sweep; both backends)."""

    @pytest.mark.parametrize("make", BACKENDS)
    def test_absent_src_never_reaches(self, make):
        g = build_backend(make, [(1, 2)])
        assert not reaches(g, 99, 99)
        assert not reaches(g, 99, 1)

    @pytest.mark.parametrize("make", BACKENDS)
    def test_present_node_reaches_itself(self, make):
        g = build_backend(make, [(1, 2)])
        assert reaches(g, 1, 1)
        assert reaches(g, 2, 2)  # present via an incoming edge only

    @pytest.mark.parametrize("make", BACKENDS)
    def test_present_src_absent_dst(self, make):
        g = build_backend(make, [(1, 2)])
        assert not reaches(g, 1, 99)

    @pytest.mark.parametrize("make", BACKENDS)
    def test_empty_graph(self, make):
        g = make()
        assert not reaches(g, 0, 0)


class TestCSRDigraph:
    """The flat-array backend's own lifecycle: freeze, invalidation on
    mutation, lazy rebuild."""

    def test_freeze_is_idempotent(self):
        g = build_backend(CSRDigraph, [(1, 2), (2, 3)])
        assert not g.frozen
        g.freeze()
        assert g.frozen
        first = g._csr()
        g.freeze()
        assert g._csr() is first

    def test_mutation_invalidates_frozen_form(self):
        g = build_backend(CSRDigraph, [(1, 2)])
        g.freeze()
        g.add_edge(2, 3)
        assert not g.frozen
        # The next frozen-path query rebuilds and sees the new edge.
        assert reachable_from(g, [1]) == {1, 2, 3}
        assert g.frozen

    def test_duplicate_edge_keeps_frozen_form(self):
        g = build_backend(CSRDigraph, [(1, 2)])
        g.freeze()
        assert g.add_edge(1, 2) is False
        assert g.frozen

    def test_add_node_after_freeze(self):
        g = build_backend(CSRDigraph, [(1, 2)])
        g.freeze()
        g.add_node(99)
        assert reachable_from(g, [99]) == {99}

    def test_views_read_live_adjacency(self):
        g = build_backend(CSRDigraph, [(1, 2)])
        view = g.successors(1)
        g.add_edge(1, 3)
        assert view == {2, 3}

    def test_interner_bijection(self):
        interner = Interner()
        ids = [interner.intern(v) for v in ("a", "b", "a", "c")]
        assert ids == [0, 1, 0, 2]
        assert interner.values == ["a", "b", "c"]
        assert interner.id_of("b") == 1
        assert interner.id_of("zzz") is None
        assert "c" in interner and len(interner) == 3

    def test_reaches_any_accounting(self):
        g = build_backend(CSRDigraph, [(1, 2), (2, 3)])
        hit, visited = g.reaches_any([1], [3])
        assert hit and visited >= 1
        miss, visited = g.reaches_any([3], [1])
        assert not miss and visited >= 1

    def test_reaches_any_stray_endpoints(self):
        g = build_backend(CSRDigraph, [(1, 2)])
        hit, _ = g.reaches_any([99], [99])
        assert hit  # a stray source trivially reaches itself
        miss, _ = g.reaches_any([99], [1])
        assert not miss


class TestBackendReachabilityAgreement:
    """Property: the CSR fast paths compute exactly what the generic
    BFS computes on the object graph."""

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists, sources=st.lists(st.integers(0, 16), max_size=4))
    def test_reachable_from_agrees(self, edges, sources):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        assert reachable_from(csr, sources) == reachable_from(obj, sources)

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists, targets=st.lists(st.integers(0, 16), max_size=4))
    def test_reachable_to_agrees(self, edges, targets):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        assert reachable_to(csr, targets) == reachable_to(obj, targets)

    @settings(max_examples=60, deadline=None)
    @given(
        edges=edge_lists,
        src=st.integers(0, 16),
        dst=st.integers(0, 16),
    )
    def test_reaches_agrees(self, edges, src, dst):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        assert reaches(csr, src, dst) == reaches(obj, src, dst)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists, sources=st.lists(st.integers(0, 16), max_size=4))
    def test_custom_follow_agrees(self, edges, sources):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        # A custom follow forces the generic BFS on both backends.
        assert reachable_from(
            csr, sources, follow=csr.predecessors
        ) == reachable_from(obj, sources, follow=obj.predecessors)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_lists)
    def test_tarjan_agrees(self, edges):
        obj = build_backend(Digraph, edges)
        csr = build_backend(CSRDigraph, edges)
        ours = {frozenset(c) for c in strongly_connected_components(csr)}
        theirs = {frozenset(c) for c in strongly_connected_components(obj)}
        assert ours == theirs


class TestRemoveEdge:
    """Edge retraction (the incremental daemon's primitive) on both
    backends: presence flag, count bookkeeping, surviving endpoints,
    and reachability answers matching a from-scratch rebuild."""

    def backends(self):
        from repro.graph import CSRDigraph

        return [Digraph, CSRDigraph]

    def test_remove_present_edge(self):
        for factory in self.backends():
            g = factory()
            g.add_edge(1, 2)
            assert g.remove_edge(1, 2) is True
            assert not g.has_edge(1, 2)
            assert g.edge_count == 0

    def test_remove_absent_edge_is_a_noop(self):
        for factory in self.backends():
            g = factory()
            g.add_edge(1, 2)
            assert g.remove_edge(2, 1) is False
            assert g.remove_edge(3, 4) is False
            assert g.edge_count == 1

    def test_endpoints_survive_isolation(self):
        for factory in self.backends():
            g = factory()
            g.add_edge(1, 2)
            g.remove_edge(1, 2)
            assert 1 in g and 2 in g
            assert list(g.successors(1)) == []
            assert list(g.predecessors(2)) == []

    def test_degrees_and_readd(self):
        for factory in self.backends():
            g = factory()
            g.add_edge(1, 2)
            g.add_edge(3, 2)
            g.remove_edge(1, 2)
            assert g.in_degree(2) == 1
            assert g.out_degree(1) == 0
            # Re-adding a removed edge is a fresh insertion.
            assert g.add_edge(1, 2) is True
            assert g.edge_count == 2

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists, removals=edge_lists)
    def test_matches_rebuild_from_surviving_edges(self, edges, removals):
        for factory in self.backends():
            g = factory()
            g.add_edges(edges)
            removed = set()
            for src, dst in removals:
                if g.remove_edge(src, dst):
                    removed.add((src, dst))
            survivors = set(edges) - removed
            assert set(g.edges()) == survivors
            assert g.edge_count == len(survivors)
            fresh = factory()
            fresh.add_edges(survivors)
            for node in list(g.nodes()):
                assert reachable_from(g, [node]) >= reachable_from(
                    fresh, [node]
                )
