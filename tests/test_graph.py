"""Tests for the graph substrate (digraph, reachability, SCC, closure,
union-find), including cross-checks against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Digraph,
    UnionFind,
    condensation,
    reachable_from,
    reachable_to,
    reaches,
    strongly_connected_components,
    transitive_closure,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    max_size=60,
)


def build(edges):
    g = Digraph()
    g.add_edges(edges)
    return g


class TestDigraph:
    def test_empty(self):
        g = Digraph()
        assert len(g) == 0
        assert g.edge_count == 0

    def test_add_edge_returns_new_flag(self):
        g = Digraph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False
        assert g.edge_count == 1

    def test_add_node_idempotent(self):
        g = Digraph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1

    def test_successors_and_predecessors(self):
        g = build([(1, 2), (1, 3), (4, 2)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(2) == {1, 4}

    def test_unknown_node_has_empty_neighbourhoods(self):
        g = Digraph()
        assert g.successors("ghost") == frozenset()
        assert g.predecessors("ghost") == frozenset()

    def test_degrees(self):
        g = build([(1, 2), (1, 3)])
        assert g.out_degree(1) == 2
        assert g.in_degree(3) == 1

    def test_has_edge(self):
        g = build([(1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_reverse(self):
        g = build([(1, 2), (2, 3)])
        r = g.reverse()
        assert r.has_edge(2, 1) and r.has_edge(3, 2)
        assert r.node_count == g.node_count

    def test_copy_is_independent(self):
        g = build([(1, 2)])
        c = g.copy()
        c.add_edge(2, 3)
        assert not g.has_edge(2, 3)

    def test_edges_iteration(self):
        g = build([(1, 2), (2, 3)])
        assert set(g.edges()) == {(1, 2), (2, 3)}

    def test_contains(self):
        g = build([(1, 2)])
        assert 1 in g and 99 not in g


class TestReachability:
    def test_reachable_from_includes_sources(self):
        g = build([(1, 2)])
        assert reachable_from(g, [1]) == {1, 2}

    def test_reachable_from_multiple_sources(self):
        g = build([(1, 2), (3, 4)])
        assert reachable_from(g, [1, 3]) == {1, 2, 3, 4}

    def test_reachable_respects_direction(self):
        g = build([(1, 2)])
        assert reachable_from(g, [2]) == {2}

    def test_reachable_to(self):
        g = build([(1, 2), (2, 3)])
        assert reachable_to(g, [3]) == {1, 2, 3}

    def test_reaches(self):
        g = build([(1, 2), (2, 3)])
        assert reaches(g, 1, 3)
        assert not reaches(g, 3, 1)
        assert reaches(g, 2, 2)

    def test_custom_follow(self):
        g = build([(1, 2)])
        # following predecessors from 2 finds 1.
        assert reachable_from(g, [2], follow=g.predecessors) == {1, 2}

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists, source=st.integers(0, 14))
    def test_matches_networkx(self, edges, source):
        g = build(edges + [(source, source)])
        ng = nx.DiGraph(edges + [(source, source)])
        ours = reachable_from(g, [source])
        theirs = nx.descendants(ng, source) | {source}
        assert ours == theirs


class TestTarjan:
    def test_single_cycle(self):
        g = build([(1, 2), (2, 3), (3, 1)])
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert set(comps[0]) == {1, 2, 3}

    def test_dag_has_singletons(self):
        g = build([(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_reverse_topological_order(self):
        g = build([(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        order = [c[0] for c in comps]
        # sinks first
        assert order.index(3) < order.index(1)

    def test_condensation(self):
        g = build([(1, 2), (2, 1), (2, 3)])
        dag, component_of = condensation(g)
        assert component_of[1] == component_of[2]
        assert component_of[3] != component_of[1]
        assert dag.edge_count == 1

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists)
    def test_matches_networkx(self, edges):
        g = build(edges)
        ng = nx.DiGraph(edges)
        ng.add_nodes_from(g.nodes())
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {
            frozenset(c)
            for c in nx.strongly_connected_components(ng)
        }
        assert ours == theirs


class TestTransitiveClosure:
    def test_chain(self):
        g = build([(1, 2), (2, 3)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 3)
        assert not tc.has_edge(1, 1)

    def test_cycle_members_reach_themselves(self):
        g = build([(1, 2), (2, 1)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 1)
        assert tc.has_edge(2, 2)

    def test_self_loop(self):
        g = build([(1, 1)])
        tc = transitive_closure(g)
        assert tc.has_edge(1, 1)

    def test_reflexive_mode(self):
        g = build([(1, 2)])
        tc = transitive_closure(g, reflexive=True)
        assert tc.has_edge(1, 1) and tc.has_edge(2, 2)

    @settings(max_examples=50, deadline=None)
    @given(edges=edge_lists)
    def test_matches_networkx(self, edges):
        g = build(edges)
        ng = nx.DiGraph(edges)
        ng.add_nodes_from(g.nodes())
        ours = set(transitive_closure(g).edges())
        theirs = set(nx.transitive_closure(ng).edges())
        assert ours == theirs


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind()
        assert not uf.same(1, 2)

    def test_union_then_same(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.same(1, 2)

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.same(1, 3)

    def test_union_count_ignores_redundant(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 1)
        assert uf.union_count == 1

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.find("c")
        groups = uf.groups()
        sizes = sorted(len(members) for members in groups.values())
        assert sizes == [1, 2]

    def test_len_counts_registered(self):
        uf = UnionFind()
        uf.find("x")
        uf.union("y", "z")
        assert len(uf) == 3

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
        )
    )
    def test_equivalence_closure_property(self, pairs):
        uf = UnionFind()
        for a, c in pairs:
            uf.union(a, c)
        # Build the expected equivalence relation with networkx.
        ng = nx.Graph(pairs)
        for a in range(10):
            ng.add_node(a)
        for comp in nx.connected_components(ng):
            comp = list(comp)
            for x in comp[1:]:
                assert uf.same(comp[0], x)
