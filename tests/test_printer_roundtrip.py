"""Pretty-printer tests, including the parse/print round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import parse, parse_expr, pretty
from repro.lang.compare import ast_equal
from repro.lang.printer import pretty_program
from repro.workloads.generators import random_typed_program

from tests.helpers import SAMPLE_SOURCES


class TestBasicRendering:
    def test_variable(self):
        assert pretty(parse_expr("x")) == "x"

    def test_literals(self):
        for src in ["42", "true", "false", "()"]:
            assert pretty(parse_expr(src)) == src

    def test_lambda_with_label(self):
        assert pretty(parse_expr("fn[l] x => x")) == "fn[l] x => x"

    def test_lambda_label_suppressed(self):
        expr = parse_expr("fn[l] x => x")
        assert pretty(expr, show_labels=False) == "fn x => x"

    def test_application_spacing(self):
        assert pretty(parse_expr("f x y")) == "f x y"

    def test_nested_application_parenthesised(self):
        assert pretty(parse_expr("f (g x)")) == "f (g x)"

    def test_operator_precedence_no_extra_parens(self):
        assert pretty(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"

    def test_operator_precedence_needed_parens(self):
        assert pretty(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_subtraction_associativity_parens(self):
        assert pretty(parse_expr("1 - (2 - 3)")) == "1 - (2 - 3)"
        assert pretty(parse_expr("1 - 2 - 3")) == "1 - 2 - 3"

    def test_lambda_argument_parenthesised(self):
        assert (
            pretty(parse_expr("f (fn x => x)"), show_labels=False)
            == "f (fn x => x)"
        )

    def test_record(self):
        assert pretty(parse_expr("(1, 2)")) == "(1, 2)"

    def test_deref_assign(self):
        assert pretty(parse_expr("c := !c")) == "c := !c"

    def test_case_rendering(self):
        src = (
            "datatype intlist = Nil | Cons of int * intlist;\n"
            "case Nil of Nil => 0 | Cons(h, t) => h end"
        )
        prog = parse(src)
        text = pretty(prog.root, show_labels=False)
        assert text == "case Nil of Nil => 0 | Cons(h, t) => h end"


def roundtrip_expr(source: str) -> None:
    expr = parse_expr(source)
    again = parse_expr(pretty(expr))
    assert ast_equal(expr, again), pretty(expr)


class TestRoundTripHandWritten:
    @pytest.mark.parametrize("source", list(SAMPLE_SOURCES.values()))
    def test_samples_roundtrip_via_program(self, source):
        prog = parse(source)
        text = pretty_program(prog)
        again = parse(text)
        assert ast_equal(prog.root, again.root)

    @pytest.mark.parametrize(
        "source",
        [
            "fn x => fn y => x y",
            "let a = 1 in a := 2",
            "!(f x)",
            "ref (fn x => x)",
            "#1 (#2 p)",
            "if a then b else if c then d else e",
            "f (if a then b else c)",
            "(fn x => x) (fn y => y)",
            "not (1 < 2)",
            "print (f 1)",
            "1 + 2 <= 3 * 4",
        ],
    )
    def test_expression_roundtrip(self, source):
        roundtrip_expr(source)


class TestRoundTripGenerated:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_program_roundtrip(self, seed):
        prog = random_typed_program(seed, fuel=18)
        text = pretty_program(prog)
        again = parse(text)
        assert ast_equal(prog.root, again.root)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_is_idempotent(self, seed):
        prog = random_typed_program(seed, fuel=14)
        once = pretty_program(prog)
        twice = pretty_program(parse(once))
        assert once == twice
