"""Tests for the static rule checker (repro.rules.check)."""

import pytest

from repro.rules import (
    GRAPH_SCHEMA,
    Rel,
    Rule,
    RuleCheckError,
    RuleProgram,
    SHIPPED_PROGRAMS,
    check_programs,
    check_rules,
    make_vars,
)
from repro.rules.dsl import NID, NODE
from repro.rules.fixtures import FIXTURES

N, M, S, X = make_vars("N M S X")

EDGE = Rel("edge", NODE, NODE, kind="edb")
MARK = Rel("mark", NODE, kind="edb")
SRC = Rel("src", NID, NODE, kind="edb")
REACH = Rel("reach", NODE)
CALLS = Rel("calls", NODE, NID, k=1)


def check(rules, schema=None, **kwargs):
    return check_rules(rules, schema=schema, **kwargs)


class TestShippedPrograms:
    def test_shipped_programs_pass_their_own_checker(self):
        checked = check_programs(SHIPPED_PROGRAMS, schema=GRAPH_SCHEMA)
        assert checked.linear
        # One fused level 0 holds every recursive propagation
        # (join-only relations with no IDB dependencies may share it);
        # the verdict relations that read a complement or a recursive
        # annotation sit strictly above it.
        level0 = {plan.rel.name for plan in checked.levels[0]}
        recursive0 = {
            plan.rel.name for plan in checked.levels[0] if plan.recursive
        }
        assert {"reach_lam", "escape", "calls"} <= level0
        assert recursive0 == {
            "reach_lam",
            "escape",
            "calls",
            "taint",
            "con_val",
            "red",
            "klabels",
        }
        upper = {
            plan.rel.name
            for level in checked.levels[1:]
            for plan in level
        }
        assert {"stuck", "escaping_fun", "dead_fun", "tainted_sink"} <= upper

    def test_plan_classifies_seed_vs_step_rules(self):
        checked = check_programs(SHIPPED_PROGRAMS, schema=GRAPH_SCHEMA)
        plan = checked.plan_for("reach_lam")
        assert [r.name for r in plan.seed_rules] == ["reach-lam-seed"]
        assert [r.name for r in plan.step_rules] == ["reach-lam-step"]
        with pytest.raises(KeyError):
            checked.plan_for("nonexistent")

    def test_render_report_shows_strata(self):
        checked = check_programs(SHIPPED_PROGRAMS, schema=GRAPH_SCHEMA)
        report = checked.render_report()
        assert report.startswith("level 0:")
        assert "reach_lam*" in report  # * marks recursion
        assert "NONLINEAR" not in report


class TestSafety:
    def test_unbound_head_variable_rejected(self):
        with pytest.raises(RuleCheckError) as err:
            check([Rule(REACH(X), [MARK(N)], name="unsafe")])
        assert "range restriction" in str(err.value)
        assert "unsafe" in str(err.value)

    def test_unbound_negated_variable_rejected(self):
        with pytest.raises(RuleCheckError) as err:
            check([Rule(REACH(N), [MARK(N), ~REACH(X)], name="floatneg")])
        assert "negated atom" in str(err.value)

    def test_negating_bounded_relation_rejected(self):
        rule = Rule(
            REACH(N), [MARK(N), ~CALLS(N, S)], name="negbounded"
        )
        with pytest.raises(RuleCheckError) as err:
            check([rule], require_linear=False)
        assert "cannot negate k-bounded" in str(err.value)

    def test_bounded_value_must_transport(self):
        # The value variable is consumed as a join key instead of
        # transported into the head's value column.
        sink = Rel("sink", NODE)
        rule = Rule(sink(N), [CALLS(N, S), SRC(S, M)], name="opened")
        with pytest.raises(RuleCheckError) as err:
            check([rule], require_linear=False)
        assert "transport" in str(err.value)


class TestSchemaConformance:
    def test_unknown_base_relation_rejected(self):
        ghost = Rel("ghost", NODE, kind="edb")
        with pytest.raises(RuleCheckError) as err:
            check([Rule(REACH(N), [ghost(N)])], schema=GRAPH_SCHEMA)
        assert "not in the schema" in str(err.value)

    def test_signature_mismatch_rejected(self):
        fake_edge = Rel("edge", NODE, kind="edb")  # wrong arity
        with pytest.raises(RuleCheckError) as err:
            check([Rule(REACH(N), [fake_edge(N)])], schema=GRAPH_SCHEMA)
        assert "the schema says" in str(err.value)

    def test_shadowing_base_name_rejected(self):
        shadow = Rel("lam_node", NODE)  # idb with a base name
        with pytest.raises(RuleCheckError) as err:
            check(
                [Rule(shadow(N), [GRAPH_SCHEMA["lam_node"](N)])],
                schema=GRAPH_SCHEMA,
            )
        assert "shadows the base relation" in str(err.value)


class TestStratification:
    def test_negation_inside_own_recursion_rejected(self):
        odd = Rel("odd", NODE)
        rules = [
            Rule(odd(N), [EDGE(M, N), ~odd(M)], name="odd-step"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules, require_linear=False)
        assert "not stratified" in str(err.value)

    def test_mutual_recursion_rejected(self):
        ping = Rel("ping", NODE)
        pong = Rel("pong", NODE)
        rules = [
            Rule(ping(N), [MARK(N)], name="ping-seed"),
            Rule(ping(N), [pong(M), EDGE(M, N)], name="ping-step"),
            Rule(pong(N), [ping(M), EDGE(M, N)], name="pong-step"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules, require_linear=False)
        assert "mutually recursive" in str(err.value)

    def test_levels_follow_dependencies(self):
        base = Rel("base", NODE)
        above = Rel("above", NODE)
        rules = [
            Rule(base(N), [MARK(N)], name="b-seed"),
            Rule(base(N), [base(M), EDGE(M, N)], name="b-step"),
            Rule(above(N), [base(N), ~MARK(N)], name="a-join"),
        ]
        checked = check(rules)
        assert checked.plan_for("base").level == 0
        assert checked.plan_for("above").level == 1
        assert checked.plan_for("base").recursive
        assert not checked.plan_for("above").recursive


class TestLinearity:
    def test_transitive_closure_rejected_by_default(self):
        path = Rel("path", NODE, NODE)
        rules = [
            Rule(path(N, M), [EDGE(N, M)], name="path-seed"),
            Rule(path(N, X), [path(N, M), EDGE(M, X)], name="path-step"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules)
        assert "not bounded by O(n+e)" in str(err.value)

    def test_nonlinear_demoted_to_verdict_when_not_required(self):
        path = Rel("path", NODE, NODE)
        rules = [
            Rule(path(N, M), [EDGE(N, M)], name="path-seed"),
            Rule(path(N, X), [path(N, M), EDGE(M, X)], name="path-step"),
        ]
        checked = check(rules, require_linear=False)
        assert not checked.linear
        bad = [v for v in checked.verdicts if not v.linear]
        assert bad and all("path" in v.rule.name for v in bad)

    def test_two_recursive_premises_rejected(self):
        both = Rel("both", NODE)
        rules = [
            Rule(both(N), [MARK(N)], name="seed"),
            Rule(
                both(N),
                [both(N), both(M), EDGE(M, N)],
                name="double",
            ),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules)
        assert "drive only one" in str(err.value)

    def test_cross_product_rejected(self):
        pair = Rel("pair", NODE, NODE)
        rules = [
            Rule(pair(N, M), [MARK(N), MARK(M)], name="cross"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules)
        assert "no join ordering" in str(err.value)

    def test_errors_are_aggregated(self):
        path = Rel("path", NODE, NODE)
        rules = [
            Rule(REACH(X), [MARK(N)], name="unsafe"),
            Rule(path(N, X), [path(N, M), EDGE(M, X)], name="path-step"),
        ]
        with pytest.raises(RuleCheckError) as err:
            check(rules)
        assert len(err.value.errors) >= 2


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_every_fixture_is_rejected_with_a_named_rule(self, name):
        programs = FIXTURES[name]()
        with pytest.raises(RuleCheckError) as err:
            check_programs(programs, schema=GRAPH_SCHEMA)
        # Actionable: every message names the offending rule or
        # relation, never just "invalid".
        assert err.value.errors
        assert all(
            "'" in message or "rule " in message
            for message in err.value.errors
        )
