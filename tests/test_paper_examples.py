"""The paper's own worked examples, reproduced as tests.

Each test cites the section it comes from, so the test suite doubles
as an executable index into the paper.
"""

import pytest

from repro.cfa.dtc import analyze_dtc
from repro.cfa.standard import analyze_standard
from repro.core.queries import analyze_subtransitive
from repro.lang import parse
from repro.types.infer import infer_types
from repro.types.measure import type_size
from repro.workloads.cubic import make_cubic_program, make_cubic_source


class TestSection2Definition:
    """Standard CFA = least label-set assignment closed under the two
    conditions."""

    def test_condition_one_abstractions(self):
        prog = parse("fn[l] x => x")
        cfa = analyze_standard(prog)
        assert "l" in cfa.labels_of(prog.abstraction("l"))

    def test_condition_two_application(self):
        prog = parse("(fn[l] x => x) (fn[m] y => y)")
        cfa = analyze_standard(prog)
        # L(x) >= L(e2)
        assert cfa.labels_of_var("x") >= cfa.labels_of(prog.root.arg)
        # L((e1 e2)) >= L(body)
        assert cfa.labels_of(prog.root) >= cfa.labels_of(
            prog.root.fn.body
        )

    def test_join_point_fragment(self):
        """Section 2's 'fun f x = ...; (f x1); (f x2)' join point: the
        label set for x is the union of those for x1 and x2."""
        src = (
            "let f = fn[f] x => x in "
            "let x1 = fn[a] p => p in "
            "let x2 = fn[b] q => q in "
            "(f x1, f x2)"
        )
        prog = parse(src)
        cfa = analyze_standard(prog)
        assert cfa.labels_of_var("x") == {"a", "b"}


class TestSection3WorkedExample:
    """(\\x.(x x)) (\\x'.x') — both DTC and LC' derive \\x'.x' for the
    whole program."""

    SRC = "(fn[f] x => x x) (fn[g] y => y)"

    def test_dtc_derivation(self):
        prog = parse(self.SRC)
        dtc = analyze_dtc(prog)
        assert dtc.derivable(prog.root, prog.abstraction("g"))

    def test_lc_multi_step_path(self):
        """What was one TRANS step in DTC is a multi-step path in LC
        (Proposition 1)."""
        prog = parse(self.SRC)
        sub = analyze_subtransitive(prog)
        from repro.graph.reachability import reachable_from

        start = sub.factory.expr_node(prog.root)
        target = sub.factory.expr_node(prog.abstraction("g"))
        seen = reachable_from(sub.graph, [start])
        assert target in seen
        # And it is genuinely multi-step: no direct edge.
        assert not sub.graph.has_edge(start, target)

    def test_inner_application_sees_g(self):
        prog = parse(self.SRC)
        sub = analyze_subtransitive(prog)
        inner = prog.root.fn.body  # (x x)
        assert sub.labels_of(inner) == {"g"}


class TestSection4Termination:
    def test_type_template_example(self):
        """An expression of type (t1 -> t2) -> t3 -> t4 contributes six
        operator positions — one per proper subterm of the type."""
        from repro.types.types import INT, TFun

        ty = TFun(TFun(INT, INT), TFun(INT, INT))
        # Proper subterms: (t1->t2), t1, t2, (t3->t4), t3, t4.
        assert type_size(ty) - 1 == 6

    def test_algorithm_never_reads_types(self):
        """LC' runs identically with and without inference supplied
        (on a datatype-free program) — 'our algorithm only needs to
        know that the types exist'."""
        src = "let id = fn[id] x => x in id (fn[g] y => y)"
        prog = parse(src)
        with_types = analyze_subtransitive(
            prog, inference=infer_types(prog)
        )
        prog2 = parse(src)
        without = analyze_subtransitive(prog2)
        for a, c in zip(prog.nodes, prog2.nodes):
            assert with_types.labels_of(a) == without.labels_of(c)


class TestSection5Polymorphism:
    def test_id_id_id_instantiations(self):
        """'the induced monotypes for id are int->int, (int->int)->
        (int->int) and ((int->int)->(int->int))->...' — sizes 3, 7, 15."""
        src = "let id = fn x => x in ((id id) id) 1"
        prog = parse(src)
        inference = infer_types(prog)
        from repro.lang.ast import Var

        sizes = sorted(
            type_size(inference.type_of(occ))
            for occ in prog.nodes
            if isinstance(occ, Var) and occ.name == "id"
        )
        assert sizes == [3, 7, 15]

    def test_henglein_family_footnote(self):
        """f_{i+1} = \\x.f_i(f_i x): bounded Henglein-size types but
        exponential let-expansion monotypes — the type size of f_i
        doubles with i under McAllester's definition."""
        lines = ["let f0 = fn x0 => x0 + 0 in"]
        for i in range(1, 5):
            lines.append(f"let f{i} = fn y{i} => f{i-1} (f{i-1} y{i}) in")
        lines.append("f4 1")
        prog = parse("\n".join(lines))
        inference = infer_types(prog)  # still typeable
        assert inference.type_of(prog.root).__class__.__name__ == "TCon"


class TestSection10Benchmark:
    def test_benchmark_shape_matches_paper(self):
        """Size-1 benchmark is exactly the six definitions from the
        paper (fs, bs, f1, b1, x1, y1)."""
        prog = make_cubic_program(1)
        names = [
            node.name
            for node in prog.nodes
            if type(node).__name__ == "Let"
        ]
        assert names == ["fs", "bs", "f1", "b1", "x1", "y1"]

    def test_source_form_parses_to_same_analysis(self):
        ast_prog = make_cubic_program(3)
        src_prog = parse(make_cubic_source(3))
        a = analyze_standard(ast_prog).all_label_sets()
        c = analyze_standard(src_prog).all_label_sets()
        # Same structure entirely.
        assert a == c

    def test_join_behaviour(self):
        """fs's parameter joins every f_i."""
        prog = make_cubic_program(4)
        cfa = analyze_standard(prog)
        # The parameter of fs is 'x' (first binder named x).
        fs = prog.abstraction("fs")
        assert cfa.labels_of_var(fs.param) == {"f1", "f2", "f3", "f4"}

    def test_nontrivial_sites_are_the_y_bindings(self):
        prog = make_cubic_program(5)
        assert len(prog.nontrivial_applications()) == 5

    def test_subtransitive_equals_standard_on_family(self):
        prog = make_cubic_program(6)
        std = analyze_standard(prog)
        sub = analyze_subtransitive(prog)
        for node in prog.nodes:
            assert std.labels_of(node) == sub.labels_of(node)

    def test_query_answers_grow_linearly_per_site(self):
        """Each non-trivial site can call every b_i — the O(n) answer
        that makes query-all quadratic."""
        n = 6
        prog = make_cubic_program(n)
        sub = analyze_subtransitive(prog)
        for site in prog.nontrivial_applications():
            assert len(sub.may_call(site)) == n


class TestSanitizerOnPaperExamples:
    """The LC' <-> DTC agreement (Proposition 1) holds, checked by the
    graph sanitizer, on every worked example above — the acceptance
    criterion for the sanitizer subsystem."""

    EXAMPLES = [
        "(fn[f] x => x x) (fn[g] y => y)",      # Section 3
        "(fn[l] x => x) (fn[m] y => y)",        # Section 2, condition 2
        "let f = fn[f] x => x in "
        "let x1 = fn[a] p => p in "
        "let x2 = fn[b] q => q in "
        "(f x1, f x2)",                          # Section 2 join point
    ]

    @pytest.mark.parametrize("src", EXAMPLES)
    def test_sources_sanitize_with_dtc_agreement(self, src):
        from repro.core.lc import build_subtransitive_graph

        sub = build_subtransitive_graph(parse(src))
        report = sub.sanitize()
        assert report.ok, report.render()
        assert report.dtc_checked

    def test_truncated_tower_skips_dtc_but_passes(self):
        """Section 5's (id id) id hits the depth cap; the capped graph
        still passes every structural check, and the sanitizer
        (correctly) refuses the DTC comparison for it."""
        from repro.core.lc import build_subtransitive_graph

        sub = build_subtransitive_graph(
            parse("let id = fn[id] x => x in (id id) id")
        )
        assert sub.factory.depth_truncations > 0
        report = sub.sanitize()
        assert report.ok, report.render()
        assert not report.dtc_checked

    @pytest.mark.parametrize("n", [1, 4, 8])
    def test_cubic_family_sanitizes(self, n):
        from repro.core.lc import build_subtransitive_graph

        sub = build_subtransitive_graph(make_cubic_program(n))
        report = sub.sanitize()
        assert report.ok, report.render()
        assert report.dtc_checked
