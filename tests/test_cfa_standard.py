"""Unit tests for the standard (cubic) inclusion-based CFA."""

import pytest

from repro.cfa.standard import analyze_standard
from repro.errors import QueryError
from repro.lang import parse
from repro.lang.ast import App, Var

DT = "datatype intlist = Nil | Cons of int * intlist;\n"


def labels(src, algorithm=analyze_standard):
    prog = parse(src)
    return prog, algorithm(prog)


class TestCoreLambda:
    def test_abstraction_contains_its_own_label(self):
        prog, cfa = labels("fn[me] x => x")
        assert cfa.labels_of(prog.root) == {"me"}

    def test_application_result(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        assert cfa.labels_of(prog.root) == {"g"}

    def test_argument_flows_to_parameter(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        assert cfa.labels_of_var("x") == {"g"}

    def test_paper_example_self_application(self):
        # (\x.(x x)) (\x'.x') from Section 3.
        prog, cfa = labels("(fn[f] x => x x) (fn[g] y => y)")
        assert cfa.labels_of(prog.root) == {"g"}
        assert cfa.labels_of_var("x") == {"g"}

    def test_monovariance_conflates_call_sites(self):
        # id applied to two different functions: monovariant analysis
        # reports both at both result positions.
        src = (
            "let id = fn[id] x => x in "
            "(id (fn[a] p => p), id (fn[b] q => q))"
        )
        prog, cfa = labels(src)
        first, second = prog.root.body.fields  # the record's fields
        assert cfa.labels_of(first) == {"a", "b"}
        assert cfa.labels_of(second) == {"a", "b"}

    def test_unapplied_function_body_still_analysed(self):
        # Standard CFA has no dead-code treatment (Section 1 item 2).
        src = "let dead = fn[dead] x => (fn[inner] y => y) x in fn[live] z => z"
        prog, cfa = labels(src)
        assert cfa.labels_of_var("x") == set()
        inner_app = prog.applications[0]
        assert cfa.labels_of(inner_app.fn) == {"inner"}

    def test_may_call(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        assert cfa.may_call(prog.applications[0]) == {"f"}

    def test_if_joins_branches(self):
        src = "if true then fn[t] x => x else fn[e] y => y"
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"t", "e"}

    def test_letrec_flows_into_recursive_uses(self):
        src = "letrec f = fn[f] x => f in f"
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"f"}
        assert cfa.labels_of_var("f") == {"f"}


class TestDataFlow:
    def test_record_projection(self):
        src = "#1 (fn[a] x => x, fn[b] y => y)"
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"a"}

    def test_projection_through_variable(self):
        src = "let p = (fn[a] x => x, fn[b] y => y) in #2 p"
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"b"}

    def test_out_of_range_projection_is_empty(self):
        src = "let p = (fn[a] x => x, fn[b] y => y) in #3 p"
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == set()

    def test_function_through_datatype(self):
        src = (
            "datatype fl = FNil | FCons of (int -> int) * fl;\n"
            "case FCons(fn[inc] x => x + 1, FNil) of "
            "FNil => fn[zero] a => a | FCons(h, t) => h end"
        )
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"inc", "zero"}
        assert cfa.labels_of_var("h") == {"inc"}

    def test_case_no_matching_constructor_no_flow(self):
        src = (
            DT + "case Nil of Nil => fn[n] x => x "
            "| Cons(h, t) => fn[c] y => y end"
        )
        prog, cfa = labels(src)
        assert cfa.labels_of_var("h") == set()

    def test_ref_read_write(self):
        src = (
            "let c = ref (fn[init] x => x) in "
            "let u = c := (fn[later] y => y) in !c"
        )
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"init", "later"}

    def test_ref_aliasing(self):
        src = (
            "let c = ref (fn[init] x => x) in "
            "let d = c in "
            "let u = d := (fn[later] y => y) in !c"
        )
        prog, cfa = labels(src)
        assert "later" in cfa.labels_of(prog.root)

    def test_separate_refs_do_not_alias(self):
        src = (
            "let c = ref (fn[one] x => x) in "
            "let d = ref (fn[two] y => y) in !c"
        )
        prog, cfa = labels(src)
        assert cfa.labels_of(prog.root) == {"one"}

    def test_prims_produce_no_labels(self):
        prog, cfa = labels("print (fn[f] x => x)")
        assert cfa.labels_of(prog.root) == set()


class TestResultInterface:
    def test_is_label_in(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        assert cfa.is_label_in("g", prog.root)
        assert not cfa.is_label_in("f", prog.root)

    def test_expressions_with_label(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        nids = {e.nid for e in cfa.expressions_with_label("g")}
        assert prog.root.nid in nids
        assert prog.root.arg.nid in nids

    def test_all_label_sets_covers_every_node(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        sets = cfa.all_label_sets()
        assert set(sets) == {n.nid for n in prog.nodes}

    def test_call_graph(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        graph = cfa.call_graph()
        assert graph == {prog.root.nid: frozenset({"f"})}

    def test_foreign_expression_rejected(self):
        prog, cfa = labels("fn[f] x => x")
        other = parse("fn[g] y => y")
        with pytest.raises(QueryError):
            cfa.labels_of(other.root)

    def test_work_counter_positive(self):
        prog, cfa = labels("(fn[f] x => x) (fn[g] y => y)")
        assert cfa.work > 0
        assert cfa.edge_count > 0
