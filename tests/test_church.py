"""Tests for the Church-encoding stress workload — deep higher-order
types through every oracle in the repository."""

import pytest

from repro.cfa.dtc import analyze_dtc
from repro.cfa.equality import analyze_equality
from repro.cfa.standard import analyze_standard
from repro.core.queries import analyze_subtransitive
from repro.lang import evaluate
from repro.types.measure import bounded_type_report
from repro.workloads.church import church_numeral, make_church_program

from tests.helpers import assert_label_subset, assert_same_label_sets


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_church_program(0)
        with pytest.raises(ValueError):
            church_numeral(-1)

    def test_numeral_zero(self):
        import repro.lang.builders as b

        prog = b.program(
            b.app(
                church_numeral(0),
                b.lam("x", b.prim("add", b.var("x"), b.lit(1))),
                b.lit(0),
            )
        )
        assert evaluate(prog).value == 0


class TestSemantics:
    @pytest.mark.parametrize("n", [1, 2, 4, 6])
    def test_sums_correctly(self, n):
        prog = make_church_program(n)
        assert evaluate(prog).value == n * (n + 1) // 2


class TestTyping:
    def test_typeable_with_moderate_types(self):
        report = bounded_type_report(make_church_program(4))
        # Numerals live at (int->int)->int->int (size 7); `add`'s
        # instantiations are one order up.
        assert report.max_order >= 2
        assert report.max_size >= 7


class TestAnalysesAgree:
    @pytest.mark.parametrize("n", [2, 4])
    def test_subtransitive_equals_standard(self, n):
        prog = make_church_program(n)
        assert_same_label_sets(
            prog,
            analyze_standard(prog),
            analyze_subtransitive(prog),
            f"church-{n}",
        )

    def test_dtc_agrees(self):
        prog = make_church_program(3)
        assert_same_label_sets(
            prog, analyze_standard(prog), analyze_dtc(prog), "church"
        )

    def test_equality_superset(self):
        prog = make_church_program(3)
        assert_label_subset(
            prog,
            analyze_standard(prog),
            analyze_equality(prog),
            "church",
        )

    def test_runtime_soundness(self):
        prog = make_church_program(3)
        result = evaluate(prog)
        cfa = analyze_subtransitive(prog)
        for node in prog.nodes:
            assert result.trace.labels_at(node) <= cfa.labels_of(node)

    def test_graph_stays_bounded(self):
        small = analyze_subtransitive(make_church_program(3))
        large = analyze_subtransitive(make_church_program(6))
        small_nodes = small.stats.total_nodes
        large_nodes = large.stats.total_nodes
        # Roughly linear growth in n (types are fixed as n grows).
        assert large_nodes < 4 * small_nodes
